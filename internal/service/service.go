// Package service is the dimensioning-as-a-service layer: typed JSON
// request/response schemas with strict validation, plus HTTP handlers for
//
//	POST /v1/dimension   — buffer dimensioning at one rate
//	POST /v1/sweep       — a Fig. 3 style dimensioning sweep over rates
//	POST /v1/simulate    — discrete-event simulation runs (optionally batched)
//	POST /v1/multisim    — shared-device simulation of several concurrent streams
//	POST /v1/breakeven   — MEMS versus disk break-even buffers at one rate
//	POST /v1/multistream — shared-device dimensioning of a stream mix
//	GET  /healthz        — liveness
//	GET  /statsz         — cache and in-flight counters
//
// Every computation routes through the existing engines (internal/core,
// internal/explore, internal/sim, internal/multistream) on the bounded
// worker pool of internal/parallel, under a per-request context deadline and
// worker bound. Results are memoized in a sharded LRU (internal/cache) keyed
// on a canonicalized fingerprint of the parsed request, so identical
// questions — including concurrent ones, which share a single computation —
// return byte-identical response bodies. Worker bounds never change a
// result, only its latency, so they are excluded from the fingerprint.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"memstream/internal/cache"
	"memstream/internal/core"
	"memstream/internal/device"
	"memstream/internal/energy"
	"memstream/internal/engine"
	"memstream/internal/explore"
	"memstream/internal/lifetime"
	"memstream/internal/multistream"
	"memstream/internal/parallel"
	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// Config parameterises a Service.
type Config struct {
	// CacheEntries bounds the result cache (default cache.DefaultEntries).
	CacheEntries int
	// CacheShards sets the cache shard count (default cache.DefaultShards).
	CacheShards int
	// MaxWorkers caps the per-request worker bound. Zero allows up to one
	// worker per CPU (the engine default).
	MaxWorkers int
	// Timeout is the per-request compute deadline. Zero disables it.
	Timeout time.Duration

	// MaxInFlight bounds how many /v1 requests may execute at once
	// (admission control). Zero disables admission control.
	MaxInFlight int
	// MaxQueue bounds how many /v1 requests may wait for an in-flight slot
	// beyond MaxInFlight; arrivals past the queue bound are shed with a 429
	// and a Retry-After hint. Zero queues nothing: the bound alone decides.
	MaxQueue int
	// QueueWait bounds how long one queued request waits for capacity
	// before being shed (default DefaultQueueWait). Only meaningful with
	// MaxInFlight > 0.
	QueueWait time.Duration

	// RateLimit is the sustained per-client allowance on /v1 endpoints, in
	// requests per second (clients are keyed on X-API-Key when present,
	// client IP otherwise). Zero disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket capacity: the largest instantaneous
	// request batch one client may spend. Zero defaults to the integer
	// ceiling of RateLimit (at least 1).
	RateBurst int
	// RateLimitClients bounds the limiter's client-key table (LRU evicted;
	// default DefaultRateLimitClients), so hostile key churn recycles
	// entries instead of growing memory.
	RateLimitClients int
}

// Service answers dimensioning questions through a shared result cache. It
// is safe for concurrent use; the HTTP handlers and the exported typed
// methods share the same cache, counters and metric registry.
type Service struct {
	cfg      Config
	cache    *cache.Cache
	met      *serviceMetrics
	admit    *admission
	limiter  *rateLimiter
	start    time.Time
	inflight atomic.Int64
	served   atomic.Uint64
	failed   atomic.Uint64
}

// New builds a Service.
func New(cfg Config) *Service {
	met := newServiceMetrics()
	s := &Service{
		cfg:     cfg,
		cache:   cache.New(cfg.CacheEntries, cfg.CacheShards),
		met:     met,
		admit:   newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait, met.queueDepth),
		limiter: newRateLimiter(cfg.RateLimit, cfg.RateBurst, cfg.RateLimitClients),
		start:   time.Now(),
	}
	if cfg.MaxInFlight > 0 {
		met.inflightLimit.Set(float64(cfg.MaxInFlight))
	}
	return s
}

// CacheStats returns a snapshot of the result-cache counters.
func (s *Service) CacheStats() cache.Stats { return s.cache.Stats() }

// Stats is the /statsz payload.
type Stats struct {
	// Cache is the result-cache snapshot.
	Cache cache.Stats `json:"cache"`
	// CacheHitRate is Cache's hit fraction.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// InFlight is the number of requests currently being computed.
	InFlight int64 `json:"in_flight"`
	// Served counts requests answered successfully since start.
	Served uint64 `json:"served"`
	// Failed counts requests that ended in an error since start.
	Failed uint64 `json:"failed"`
	// Shed counts /v1 requests refused by admission control (queue full or
	// queue wait expired) since start.
	Shed uint64 `json:"shed"`
	// RateLimited counts /v1 requests refused by the per-client rate
	// limiter since start.
	RateLimited uint64 `json:"rate_limited"`
	// BodyTooLarge counts requests refused for an oversized body since
	// start.
	BodyTooLarge uint64 `json:"body_too_large"`
	// InFlightLimit is the configured admission bound (0 = unbounded).
	InFlightLimit int `json:"in_flight_limit"`
	// QueueDepth is the number of requests waiting for an in-flight slot.
	QueueDepth int `json:"queue_depth"`
	// RateLimitClients is the limiter key-table occupancy.
	RateLimitClients int `json:"rate_limit_clients"`
	// UptimeSeconds is the time since the Service was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	cs := s.cache.Stats()
	return Stats{
		Cache:            cs,
		CacheHitRate:     cs.HitRate(),
		InFlight:         s.inflight.Load(),
		Served:           s.served.Load(),
		Failed:           s.failed.Load(),
		Shed:             s.met.shed.Value(),
		RateLimited:      s.met.rateLimitedTotal(),
		BodyTooLarge:     s.met.bodyTooLarge.Value(),
		InFlightLimit:    s.cfg.MaxInFlight,
		QueueDepth:       int(s.met.queueDepth.Value()),
		RateLimitClients: s.limiter.clients(),
		UptimeSeconds:    time.Since(s.start).Seconds(),
	}
}

// buildVersion returns the module version recorded in the binary's build
// info ("(devel)" for plain go build/test, the module version for installed
// builds), computed once.
func buildVersion() string {
	versionOnce.Do(func() {
		version = "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
			version = bi.Main.Version
		}
	})
	return version
}

var (
	versionOnce sync.Once
	version     string
)

// workerBound clamps a request's worker ask against the service cap, or
// rejects a negative ask — siblings like points and replicas are validated
// strictly, so a sign bug should not silently change latency behaviour.
func (s *Service) workerBound(requested int) (int, error) {
	if requested < 0 {
		return 0, invalidf("workers must be non-negative (0 = service default), got %d", requested)
	}
	if s.cfg.MaxWorkers > 0 && (requested == 0 || requested > s.cfg.MaxWorkers) {
		return s.cfg.MaxWorkers, nil
	}
	return requested, nil
}

// effectiveWorkers resolves a zero worker bound to the engine default (one
// per CPU) for observability: the access log reports the bound the
// computation actually ran under.
func effectiveWorkers(workers int) int {
	if workers <= 0 {
		return parallel.DefaultWorkers()
	}
	return workers
}

// begin applies the per-request deadline and bumps the in-flight gauge; the
// returned finish records the outcome and must be called exactly once.
func (s *Service) begin(ctx context.Context) (context.Context, func(err error)) {
	cancel := func() {}
	if s.cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
	}
	s.inflight.Add(1)
	return ctx, func(err error) {
		s.inflight.Add(-1)
		cancel()
		if err != nil {
			s.failed.Add(1)
			if errors.Is(err, context.DeadlineExceeded) {
				s.met.deadlineAborts.Inc()
			}
		} else {
			s.served.Add(1)
		}
	}
}

// fingerprint canonicalizes a parsed, validated request into a cache key.
// The normalized value must marshal deterministically (structs and sorted
// maps only) and must contain every input that can change the result.
func fingerprint(endpoint string, normalized any) (string, error) {
	blob, err := json.Marshal(normalized)
	if err != nil {
		return "", fmt.Errorf("service: fingerprint: %w", err)
	}
	return endpoint + "\x00" + string(blob), nil
}

// memoize runs compute through the shared cache under the request deadline,
// marshaling its result once; hits and single-flight waiters reuse the
// stored bytes, so identical requests get byte-identical bodies.
func (s *Service) memoize(ctx context.Context, key string, compute func(ctx context.Context) (any, error)) ([]byte, error) {
	body, cached, err := s.cache.Do(ctx, key, func() ([]byte, error) {
		result, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(result)
	})
	if err == nil {
		noteCache(ctx, cached)
	}
	return body, err
}

// await runs fn on its own goroutine and abandons it when ctx ends, so
// engines without internal cancellation points still respect the request
// deadline. An abandoned computation finishes in the background (its result
// is discarded); a context that is already dead never starts fn at all, so
// single-flight retries of a timed-out flight cannot pile up orphaned work.
func await[T any](ctx context.Context, fn func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	if err := ctx.Err(); err != nil {
		var zero T
		return zero, err
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := fn()
		ch <- outcome{v, err}
	}()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// dimensionKey is the canonical fingerprint payload of a DimensionRequest.
type dimensionKey struct {
	Device  device.MEMS
	RateBps float64
	Goal    core.Goal
}

// DimensionBytes answers a DimensionRequest with the cached response body.
func (s *Service) DimensionBytes(ctx context.Context, req DimensionRequest) ([]byte, error) {
	ctx, finish := s.begin(ctx)
	var err error
	defer func() { finish(err) }()

	dev, err := req.Device.resolve()
	if err != nil {
		return nil, err
	}
	rate, err := req.Rate.rate("rate")
	if err != nil {
		return nil, err
	}
	goal, err := req.Goal.resolve()
	if err != nil {
		return nil, err
	}
	key, err := fingerprint("dimension", dimensionKey{Device: dev, RateBps: rate.BitsPerSecond(), Goal: goal})
	if err != nil {
		return nil, err
	}
	// A single-rate dimensioning always runs on one worker.
	noteWorkers(ctx, 1)
	var body []byte
	body, err = s.memoize(ctx, key, func(ctx context.Context) (any, error) {
		// A single-rate sweep routes the dimensioning through the same
		// engine path (and worker pool) as /v1/sweep; RunContext already
		// honours cancellation, so no await wrapper is needed.
		sweep, err := explore.RunContext(ctx, explore.Config{Device: dev, Goal: goal, Workers: 1}, []units.BitRate{rate})
		if err != nil {
			return nil, err
		}
		p := sweep.Points[0]
		d := p.Dimensioning
		resp := &DimensionResponse{
			Rate:              rate.String(),
			RateBitsPerSecond: rate.BitsPerSecond(),
			Feasible:          d.Feasible,
			Dominant:          d.Dominant.String(),
			BreakEvenBits:     p.BreakEven.Bits(),
			BreakEven:         p.BreakEven.String(),
			MinimumBufferBits: p.MinimumBuffer.Bits(),
			Requirements:      requirementResults(d),
		}
		if d.Feasible {
			resp.BufferBits = d.Buffer.Bits()
			resp.Buffer = d.Buffer.String()
		}
		return resp, nil
	})
	return body, err
}

// Dimension answers a DimensionRequest through the cache.
func (s *Service) Dimension(ctx context.Context, req DimensionRequest) (*DimensionResponse, error) {
	return typed[DimensionResponse](s.DimensionBytes(ctx, req))
}

// sweepKey is the canonical fingerprint payload of a SweepRequest.
type sweepKey struct {
	Device     device.MEMS
	Goal       core.Goal
	MinRateBps float64
	MaxRateBps float64
	Points     int
}

// SweepBytes answers a SweepRequest with the cached response body.
func (s *Service) SweepBytes(ctx context.Context, req SweepRequest) ([]byte, error) {
	ctx, finish := s.begin(ctx)
	var err error
	defer func() { finish(err) }()

	dev, err := req.Device.resolve()
	if err != nil {
		return nil, err
	}
	goal, err := req.Goal.resolve()
	if err != nil {
		return nil, err
	}
	minRate, err := req.MinRate.rate("min_rate")
	if err != nil {
		return nil, err
	}
	maxRate, err := req.MaxRate.rate("max_rate")
	if err != nil {
		return nil, err
	}
	if maxRate <= minRate {
		err = invalidf("max_rate %v must exceed min_rate %v", maxRate, minRate)
		return nil, err
	}
	if req.Points < 2 || req.Points > MaxSweepPoints {
		err = invalidf("points must be in [2, %d], got %d", MaxSweepPoints, req.Points)
		return nil, err
	}
	workers, err := s.workerBound(req.Workers)
	if err != nil {
		return nil, err
	}
	noteWorkers(ctx, effectiveWorkers(workers))
	key, err := fingerprint("sweep", sweepKey{
		Device:     dev,
		Goal:       goal,
		MinRateBps: minRate.BitsPerSecond(),
		MaxRateBps: maxRate.BitsPerSecond(),
		Points:     req.Points,
	})
	if err != nil {
		return nil, err
	}
	var body []byte
	body, err = s.memoize(ctx, key, func(ctx context.Context) (any, error) {
		rates, err := explore.LogSpace(minRate, maxRate, req.Points)
		if err != nil {
			return nil, err
		}
		sweep, err := explore.RunContext(ctx, explore.Config{Device: dev, Goal: goal, Workers: workers}, rates)
		if err != nil {
			return nil, err
		}
		resp := &SweepResponse{
			Goal:           goal.String(),
			Points:         make([]SweepPointResult, 0, len(sweep.Points)),
			DominanceShare: map[string]float64{},
		}
		for _, p := range sweep.Points {
			d := p.Dimensioning
			pr := SweepPointResult{
				RateBitsPerSecond: p.Rate.BitsPerSecond(),
				Rate:              p.Rate.String(),
				Feasible:          d.Feasible,
				Dominant:          d.Dominant.String(),
				BreakEvenBits:     p.BreakEven.Bits(),
			}
			if d.Feasible {
				pr.BufferBits = d.Buffer.Bits()
				pr.Buffer = d.Buffer.String()
			}
			resp.Points = append(resp.Points, pr)
		}
		for _, r := range sweep.Regimes() {
			resp.Regimes = append(resp.Regimes, RegimeResult{
				MinRate: r.MinRate.String(),
				MaxRate: r.MaxRate.String(),
				Label:   r.Label(),
				Points:  r.Points,
			})
		}
		if limit, ok := sweep.FeasibilityLimit(); ok {
			resp.FeasibilityLimit = limit.String()
		}
		for c, share := range sweep.DominanceShare() {
			resp.DominanceShare[c.String()] = share
		}
		return resp, nil
	})
	return body, err
}

// Sweep answers a SweepRequest through the cache.
func (s *Service) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	return typed[SweepResponse](s.SweepBytes(ctx, req))
}

// simulateKey is the canonical fingerprint payload of a SimulateRequest. The
// backend kind and both device parameter sets are fingerprinted, so a MEMS
// and a disk run of otherwise identical shape can never share a cache entry.
// Video parameters enter fully resolved and trace frames normalized, so
// equivalent spellings (omitted defaults, unit strings, timestamp offsets)
// share an entry.
type simulateKey struct {
	Backend    string
	Device     device.MEMS
	Disk       device.Disk
	RateBps    float64
	BufferBits float64
	DurationS  float64
	Stream     string
	Video      videoKey
	Frames     []traceFrameKey
	BestEffort float64
	Seed       uint64
	Replicas   int
}

// SimulateBytes answers a SimulateRequest with the cached response body.
func (s *Service) SimulateBytes(ctx context.Context, req SimulateRequest) ([]byte, error) {
	ctx, finish := s.begin(ctx)
	var err error
	defer func() { finish(err) }()

	sd, err := req.Device.resolveSim()
	if err != nil {
		return nil, err
	}
	kind := req.Stream
	if kind == "" {
		kind = "cbr"
	}
	switch kind {
	case "cbr", "vbr", "video", "trace":
	default:
		err = invalidf("stream must be \"cbr\", \"vbr\", \"video\" or \"trace\", got %q", req.Stream)
		return nil, err
	}
	if req.Video != nil && kind != "video" {
		err = invalidf("the video object only applies to \"stream\": \"video\", not %q", kind)
		return nil, err
	}
	if len(req.Frames) > 0 && kind != "trace" {
		err = invalidf("frames only apply to \"stream\": \"trace\", not %q", kind)
		return nil, err
	}
	// The trace defines its own rate; for every other kind the rate is the
	// nominal stream rate and is required.
	var rate units.BitRate
	var videoSpec, traceSpec workload.StreamSpec
	var vkey videoKey
	var fkeys []traceFrameKey
	if kind == "trace" {
		if req.Rate != "" {
			err = invalidf("rate does not apply to \"stream\": \"trace\" (the frames define it)")
			return nil, err
		}
		var frames []workload.Frame
		frames, fkeys, err = resolveFrames(req.Frames)
		if err != nil {
			return nil, err
		}
		// Built once: the spec memoizes its demand pattern, which every
		// replica's validation and run then shares.
		traceSpec = workload.TraceSpec(frames)
		rate = traceSpec.AverageRate()
	} else {
		rate, err = req.Rate.rate("rate")
		if err != nil {
			return nil, err
		}
		if kind == "video" {
			videoSpec, err = req.Video.resolve(rate)
			if err != nil {
				return nil, err
			}
			vkey = videoKeyOf(videoSpec)
		}
	}
	buffer, err := req.Buffer.size("buffer")
	if err != nil {
		return nil, err
	}
	duration, err := req.Duration.duration("duration", 5*units.Minute)
	if err != nil {
		return nil, err
	}
	if !duration.Positive() {
		err = invalidf("duration must be positive")
		return nil, err
	}
	if duration.Seconds() > MaxSimSeconds {
		err = invalidf("duration must not exceed %d simulated seconds, got %v", MaxSimSeconds, duration)
		return nil, err
	}
	bestEffort := 0.05
	if req.BestEffort != nil {
		bestEffort = *req.BestEffort
	}
	if math.IsNaN(bestEffort) || bestEffort < 0 || bestEffort >= 1 {
		err = invalidf("best_effort must be in [0, 1), got %v", bestEffort)
		return nil, err
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	replicas := req.Replicas
	if replicas == 0 {
		replicas = 1
	}
	if replicas < 1 || replicas > MaxSimReplicas {
		err = invalidf("replicas must be in [1, %d], got %d", MaxSimReplicas, req.Replicas)
		return nil, err
	}
	workers, err := s.workerBound(req.Workers)
	if err != nil {
		return nil, err
	}
	noteWorkers(ctx, effectiveWorkers(workers))
	// The trace's rate is derived from its frames (with subtractive
	// floating-point noise from the offset normalization); the quantized
	// frames already determine the run, so the key carries no rate for it.
	keyRate := rate.BitsPerSecond()
	if kind == "trace" {
		keyRate = 0
	}
	key, err := fingerprint("simulate", simulateKey{
		Backend:    sd.Kind,
		Device:     sd.MEMS,
		Disk:       sd.Disk,
		RateBps:    keyRate,
		BufferBits: buffer.Bits(),
		DurationS:  duration.Seconds(),
		Stream:     kind,
		Video:      vkey,
		Frames:     fkeys,
		BestEffort: bestEffort,
		Seed:       seed,
		Replicas:   replicas,
	})
	if err != nil {
		return nil, err
	}
	var body []byte
	body, err = s.memoize(ctx, key, func(ctx context.Context) (any, error) {
		var backend engine.Backend
		if sd.Kind == "disk" {
			backend = engine.NewDisk(sd.Disk)
		}
		mediaRate := sim.Config{Device: sd.MEMS, Backend: backend}.MediaRate()
		// One prototype configuration, validated once; RunReplicas applies
		// the replica seeds to every stochastic input, exactly as the old
		// per-replica construction did, and reuses one pooled simulator per
		// worker instead of building replicas simulators.
		var spec workload.StreamSpec
		switch kind {
		case "cbr":
			spec = workload.CBRSpec(rate)
		case "vbr":
			spec = workload.VBRSpec(rate, seed)
		case "video":
			spec = videoSpec
		case "trace":
			spec = traceSpec
		}
		cfg := sim.Config{
			Device:   sd.MEMS,
			Backend:  backend,
			DRAM:     device.DefaultDRAM(),
			Buffer:   buffer,
			Spec:     spec,
			Duration: duration,
			Seed:     seed,
		}
		if bestEffort > 0 {
			cfg.BestEffort = workload.NewBestEffortProcess(bestEffort, mediaRate, seed)
		}
		if err := cfg.Validate(); err != nil {
			return nil, invalidf("%v", err)
		}
		stats, err := sim.RunReplicas(ctx, workers, cfg, seed, replicas)
		if err != nil {
			// Run-time simulator failures are request-derived (most commonly
			// a buffer below the disk's spin-up drain, which only the run
			// itself detects); keep them 400s, but let cancellations and
			// deadline hits keep their transport status codes.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			return nil, invalidf("%v", err)
		}
		resp := &SimulateResponse{
			Rate:   rate.String(),
			Buffer: buffer.String(),
			Runs:   make([]SimulateResult, len(stats)),
		}
		cal := workload.DefaultCalendar()
		for i, st := range stats {
			perBit := st.PerBitEnergy()
			resp.Runs[i] = SimulateResult{
				Seed:                seed + uint64(i),
				SimulatedSeconds:    st.SimulatedTime.Seconds(),
				StreamedBits:        st.StreamedBits.Bits(),
				RefillCycles:        st.RefillCycles,
				Underruns:           st.Underruns,
				RebufferEpisodes:    st.RebufferEpisodes,
				RebufferSeconds:     st.RebufferTime.Seconds(),
				StartupDelaySeconds: st.StartupDelay.Seconds(),
				EnergyPerBit:        perBit.String(),
				EnergyPerBitJoules:  perBit.JoulesPerBit(),
				DutyCycle:           st.DutyCycle(),
			}
			if sd.Kind == "mems" {
				// The wear projections are MEMS-specific: springs and probes
				// have no disk analogue, so disk runs omit both fields.
				resp.Runs[i].SpringsLifetimeYears = yearsOrNil(st.ProjectedSpringsLifetime(sd.MEMS, cal))
				resp.Runs[i].ProbesLifetimeYears = yearsOrNil(st.ProjectedProbesLifetime(sd.MEMS, cal))
			}
		}
		return resp, nil
	})
	return body, err
}

// Simulate answers a SimulateRequest through the cache.
func (s *Service) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	return typed[SimulateResponse](s.SimulateBytes(ctx, req))
}

// multiSimKey is the canonical fingerprint payload of a MultiSimRequest. The
// policy enters in canonical spelling, and each stream carries its resolved
// parameters, so equivalent spellings share a cache entry.
type multiSimKey struct {
	Backend    string
	Device     device.MEMS
	Disk       device.Disk
	Policy     string
	Streams    []multiSimStreamKey
	DurationS  float64
	BestEffort float64
	Seed       uint64
	Replicas   int
}

// MultiSimBytes answers a MultiSimRequest with the cached response body.
func (s *Service) MultiSimBytes(ctx context.Context, req MultiSimRequest) ([]byte, error) {
	ctx, finish := s.begin(ctx)
	var err error
	defer func() { finish(err) }()

	sd, err := req.Device.resolveSim()
	if err != nil {
		return nil, err
	}
	policy, err := resolvePolicy(req.Policy)
	if err != nil {
		return nil, err
	}
	streams, skeys, err := resolveMultiSimStreams(req.Streams)
	if err != nil {
		return nil, err
	}
	duration, err := req.Duration.duration("duration", 5*units.Minute)
	if err != nil {
		return nil, err
	}
	if !duration.Positive() {
		err = invalidf("duration must be positive")
		return nil, err
	}
	if duration.Seconds() > MaxSimSeconds {
		err = invalidf("duration must not exceed %d simulated seconds, got %v", MaxSimSeconds, duration)
		return nil, err
	}
	bestEffort := 0.05
	if req.BestEffort != nil {
		bestEffort = *req.BestEffort
	}
	if math.IsNaN(bestEffort) || bestEffort < 0 || bestEffort >= 1 {
		err = invalidf("best_effort must be in [0, 1), got %v", bestEffort)
		return nil, err
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	replicas := req.Replicas
	if replicas == 0 {
		replicas = 1
	}
	if replicas < 1 || replicas > MaxSimReplicas {
		err = invalidf("replicas must be in [1, %d], got %d", MaxSimReplicas, req.Replicas)
		return nil, err
	}
	workers, err := s.workerBound(req.Workers)
	if err != nil {
		return nil, err
	}
	noteWorkers(ctx, effectiveWorkers(workers))
	key, err := fingerprint("multisim", multiSimKey{
		Backend:    sd.Kind,
		Device:     sd.MEMS,
		Disk:       sd.Disk,
		Policy:     string(policy),
		Streams:    skeys,
		DurationS:  duration.Seconds(),
		BestEffort: bestEffort,
		Seed:       seed,
		Replicas:   replicas,
	})
	if err != nil {
		return nil, err
	}
	var body []byte
	body, err = s.memoize(ctx, key, func(ctx context.Context) (any, error) {
		var backend engine.Backend
		if sd.Kind == "disk" {
			backend = engine.NewDisk(sd.Disk)
		}
		mediaRate := sim.MultiConfig{Device: sd.MEMS, Backend: backend}.MediaRate()
		// One prototype configuration, validated once; RunMultiReplicas
		// applies the replica seeds through the multi-stream convention
		// (stream j of replica i draws from seed+i ^ ((j+1)·golden ratio),
		// exactly as before) on one pooled simulator per worker.
		cfg := sim.MultiConfig{
			Device:   sd.MEMS,
			Backend:  backend,
			DRAM:     device.DefaultDRAM(),
			Policy:   policy,
			Duration: duration,
			Seed:     seed,
		}
		for j, st := range streams {
			cfg.Streams = append(cfg.Streams, sim.MultiStream{
				Name:     st.name,
				Spec:     st.spec(seed ^ (uint64(j+1) * 0x9e3779b97f4a7c15)),
				Buffer:   st.buffer,
				Priority: st.priority,
			})
		}
		if bestEffort > 0 {
			cfg.BestEffort = workload.NewBestEffortProcess(bestEffort, mediaRate, seed)
		}
		if err := cfg.Validate(); err != nil {
			return nil, invalidf("%v", err)
		}
		stats, err := sim.RunMultiReplicas(ctx, workers, cfg, seed, replicas)
		if err != nil {
			// Run-time failures are request-derived (most commonly a buffer
			// that cannot cover the multi-stream service round); keep them
			// 400s, but let cancellations keep their transport status codes.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			return nil, invalidf("%v", err)
		}
		resp := &MultiSimResponse{
			Policy: string(policy),
			Runs:   make([]MultiSimResult, len(stats)),
		}
		cal := workload.DefaultCalendar()
		for i, st := range stats {
			perBit := st.Device.PerBitEnergy()
			run := MultiSimResult{
				Seed:               seed + uint64(i),
				SimulatedSeconds:   st.Device.SimulatedTime.Seconds(),
				WakeUps:            st.Device.RefillCycles,
				StreamedBits:       st.Device.StreamedBits.Bits(),
				Underruns:          st.Device.Underruns,
				EnergyPerBit:       perBit.String(),
				EnergyPerBitJoules: perBit.JoulesPerBit(),
				DutyCycle:          st.Device.DutyCycle(),
			}
			if sd.Kind == "mems" {
				run.SpringsLifetimeYears = yearsOrNil(st.Device.ProjectedSpringsLifetime(sd.MEMS, cal))
				run.ProbesLifetimeYears = yearsOrNil(st.Device.ProjectedProbesLifetime(sd.MEMS, cal))
			}
			for j, stream := range st.Streams {
				run.Streams = append(run.Streams, MultiSimStreamResult{
					Name:                stream.Name,
					StreamedBits:        stream.StreamedBits.Bits(),
					RefillCycles:        stream.RefillCycles,
					Underruns:           stream.Underruns,
					RebufferEpisodes:    stream.RebufferEpisodes,
					RebufferSeconds:     stream.RebufferTime.Seconds(),
					StartupDelaySeconds: stream.StartupDelay.Seconds(),
					MinBufferLevelBits:  stream.MinBufferLevel.Bits(),
					EnergyShare:         st.EnergyShare(j),
				})
			}
			resp.Runs[i] = run
		}
		return resp, nil
	})
	return body, err
}

// MultiSim answers a MultiSimRequest through the cache.
func (s *Service) MultiSim(ctx context.Context, req MultiSimRequest) (*MultiSimResponse, error) {
	return typed[MultiSimResponse](s.MultiSimBytes(ctx, req))
}

// breakEvenKey is the canonical fingerprint payload of a BreakEvenRequest.
type breakEvenKey struct {
	Device  device.MEMS
	RateBps float64
}

// BreakEvenBytes answers a BreakEvenRequest with the cached response body.
func (s *Service) BreakEvenBytes(ctx context.Context, req BreakEvenRequest) ([]byte, error) {
	ctx, finish := s.begin(ctx)
	var err error
	defer func() { finish(err) }()

	dev, err := req.Device.resolve()
	if err != nil {
		return nil, err
	}
	rate, err := req.Rate.rate("rate")
	if err != nil {
		return nil, err
	}
	key, err := fingerprint("breakeven", breakEvenKey{Device: dev, RateBps: rate.BitsPerSecond()})
	if err != nil {
		return nil, err
	}
	// The MEMS and disk inversions fan out on exactly two workers.
	noteWorkers(ctx, 2)
	var body []byte
	body, err = s.memoize(ctx, key, func(ctx context.Context) (any, error) {
		// The MEMS and disk inversions are independent; fan them out on the
		// shared pool so the request honours cancellation between them.
		buffers, err := parallel.Map(ctx, 2, 2, func(_ context.Context, i int) (units.Size, error) {
			if i == 0 {
				return energy.BreakEvenBuffer(energy.MEMSBreakEvenAdapter{Device: dev}, rate)
			}
			return energy.BreakEvenBuffer(energy.DiskBreakEvenAdapter{Disk: device.Default18InchDisk()}, rate)
		})
		if err != nil {
			return nil, err
		}
		mems, disk := buffers[0], buffers[1]
		resp := &BreakEvenResponse{
			Rate:     rate.String(),
			MEMSBits: mems.Bits(),
			DiskBits: disk.Bits(),
			MEMS:     mems.String(),
			Disk:     disk.String(),
		}
		if mems.Positive() {
			resp.DiskOverMEMS = disk.DivideBy(mems)
		}
		return resp, nil
	})
	return body, err
}

// BreakEven answers a BreakEvenRequest through the cache.
func (s *Service) BreakEven(ctx context.Context, req BreakEvenRequest) (*BreakEvenResponse, error) {
	return typed[BreakEvenResponse](s.BreakEvenBytes(ctx, req))
}

// multiStreamKey is the canonical fingerprint payload of a MultiStreamRequest.
type multiStreamKey struct {
	Device                device.MEMS
	Goal                  core.Goal
	Streams               []multistream.StreamSpec
	CountInterStreamSeeks bool
}

// MultiStreamBytes answers a MultiStreamRequest with the cached response body.
func (s *Service) MultiStreamBytes(ctx context.Context, req MultiStreamRequest) ([]byte, error) {
	ctx, finish := s.begin(ctx)
	var err error
	defer func() { finish(err) }()

	dev, err := req.Device.resolve()
	if err != nil {
		return nil, err
	}
	goal, err := req.Goal.resolve()
	if err != nil {
		return nil, err
	}
	streams, err := resolveStreams(req.Streams)
	if err != nil {
		return nil, err
	}
	key, err := fingerprint("multistream", multiStreamKey{
		Device:                dev,
		Goal:                  goal,
		Streams:               streams,
		CountInterStreamSeeks: req.CountInterStreamSeeks,
	})
	if err != nil {
		return nil, err
	}
	// Shared-device dimensioning is a single sequential computation.
	noteWorkers(ctx, 1)
	var body []byte
	body, err = s.memoize(ctx, key, func(ctx context.Context) (any, error) {
		system, err := multistream.NewSystem(dev, device.DefaultDRAM(), workloadForStreams(), streams)
		if err != nil {
			return nil, invalidf("%v", err)
		}
		system.CountInterStreamSeeks = req.CountInterStreamSeeks
		dim, err := await(ctx, func() (multistream.Dimensioning, error) { return system.Dimension(goal) })
		if err != nil {
			return nil, err
		}
		resp := &MultiStreamResponse{
			Feasible: dim.Feasible,
			Dominant: dim.Dominant.String(),
		}
		if len(dim.Reasons) > 0 {
			resp.Reasons = make(map[string]string, len(dim.Reasons))
			for c, reason := range dim.Reasons {
				resp.Reasons[c.String()] = reason
			}
		}
		if dim.Feasible {
			resp.PeriodSeconds = dim.Period.Seconds()
			resp.Period = dim.Period.String()
			resp.TotalBufferBits = dim.Plan.TotalBuffer.Bits()
			resp.TotalBuffer = dim.Plan.TotalBuffer.String()
			resp.EnergySaving = dim.Plan.EnergySaving
			resp.Utilisation = dim.Plan.Utilisation
			resp.LifetimeYears = yearsOrNil(dim.Plan.Lifetime)
			for i, b := range dim.Plan.Buffers {
				resp.Buffers = append(resp.Buffers, MultiStreamBuffer{
					Name:       streams[i].Name,
					BufferBits: b.Bits(),
					Buffer:     b.String(),
				})
			}
		}
		return resp, nil
	})
	return body, err
}

// MultiStream answers a MultiStreamRequest through the cache.
func (s *Service) MultiStream(ctx context.Context, req MultiStreamRequest) (*MultiStreamResponse, error) {
	return typed[MultiStreamResponse](s.MultiStreamBytes(ctx, req))
}

// workloadForStreams returns the shared-device workload: the Table I
// calendar, with the per-stream write mix coming from the stream specs.
func workloadForStreams() lifetime.Workload { return lifetime.DefaultWorkload() }

// typed decodes a cached response body into its response type.
func typed[T any](body []byte, err error) (*T, error) {
	if err != nil {
		return nil, err
	}
	var resp T
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("service: decode cached response: %w", err)
	}
	return &resp, nil
}

// maxBodyBytes bounds request bodies read by the HTTP layer.
const maxBodyBytes = 1 << 20

// Health is the /healthz payload.
type Health struct {
	// Status is "ok" while the service is serving.
	Status string `json:"status"`
	// UptimeSeconds is the time since the Service was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Version is the module build version from debug.ReadBuildInfo.
	Version string `json:"version"`
}

// Health returns the liveness payload.
func (s *Service) Health() Health {
	return Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Version:       buildVersion(),
	}
}

// Handler returns the HTTP handler serving every endpoint. Every route
// except GET /metricsz is instrumented with the request counter and latency
// histogram families (scrapes must not observe themselves, so that two
// scrapes of an idle service stay byte-identical). The /v1 compute
// endpoints additionally pass the traffic controls, outermost first: the
// per-client rate limiter, then the admission controller, then the strict
// JSON decode — so refusals are counted and logged like any response but
// cost no decode or compute.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpointLabel string, h http.Handler) {
		mux.Handle(pattern, s.instrument(endpointLabel, h))
	}
	v1 := func(pattern, endpointLabel string, h http.Handler) {
		handle(pattern, endpointLabel, s.rateLimited(s.admitted(endpointLabel, h)))
	}
	handle("GET /healthz", "/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	}))
	handle("GET /statsz", "/statsz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	}))
	mux.Handle("GET /metricsz", s.MetricsHandler())
	v1("POST /v1/dimension", "/v1/dimension", endpoint(s, s.DimensionBytes))
	v1("POST /v1/sweep", "/v1/sweep", endpoint(s, s.SweepBytes))
	v1("POST /v1/simulate", "/v1/simulate", endpoint(s, s.SimulateBytes))
	v1("POST /v1/multisim", "/v1/multisim", endpoint(s, s.MultiSimBytes))
	v1("POST /v1/breakeven", "/v1/breakeven", endpoint(s, s.BreakEvenBytes))
	v1("POST /v1/multistream", "/v1/multistream", endpoint(s, s.MultiStreamBytes))
	return mux
}

// endpoint adapts one typed Bytes method into a strict-JSON HTTP handler.
func endpoint[Req any](s *Service, serve func(context.Context, Req) ([]byte, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req Req
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				// An oversized body is a malformed request, not load
				// shedding: it gets its own counter so the shed total means
				// admission-control refusals only.
				s.met.bodyTooLarge.Inc()
				writeJSON(w, http.StatusRequestEntityTooLarge,
					errorBody{Error: fmt.Sprintf("service: request body exceeds %d bytes", tooLarge.Limit)})
				return
			}
			writeError(w, invalidf("decode body: %v", err))
			return
		}
		if dec.More() {
			writeError(w, invalidf("request body must be a single JSON object"))
			return
		}
		body, err := serve(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	})
}

// errorBody is the JSON error payload of every non-200 response. 429
// refusals additionally carry the Retry-After hint in the body, so strict
// JSON clients need not parse headers.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429 responses.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// writeError maps an error onto a status code and a JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var verr *ValidationError
	switch {
	case errors.As(err, &verr):
		status = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; 499 in nginx convention.
		status = 499
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeJSON marshals v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}
