package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionDisabled(t *testing.T) {
	if a := newAdmission(0, 16, time.Second, nil); a != nil {
		t.Fatal("MaxInFlight 0 must disable admission control")
	}
	var a *admission
	verdict, err := a.acquire(context.Background())
	if verdict != admitOK || err != nil {
		t.Fatalf("nil admission acquire = (%v, %v); want admitOK", verdict, err)
	}
	a.release() // must not panic
}

// TestAdmissionBounds drives the controller through its full state space
// deterministically: fill the in-flight bound, fill the queue, overflow the
// queue, then free capacity and watch the queued request admit.
func TestAdmissionBounds(t *testing.T) {
	svc := New(Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: time.Minute})
	a := svc.admit

	verdict, err := a.acquire(context.Background())
	if verdict != admitOK || err != nil {
		t.Fatalf("first acquire = (%v, %v); want admitOK", verdict, err)
	}

	queued := make(chan admitErr, 1)
	go func() {
		v, _ := a.acquire(context.Background())
		queued <- v
	}()
	waitForQueueDepth(t, svc, 1)

	// The queue is now full: a third arrival is refused immediately.
	verdict, err = a.acquire(context.Background())
	if verdict != admitQueueFull || err != nil {
		t.Fatalf("overflow acquire = (%v, %v); want admitQueueFull", verdict, err)
	}

	// Freeing the slot admits the queued request.
	a.release()
	select {
	case v := <-queued:
		if v != admitOK {
			t.Fatalf("queued acquire = %v; want admitOK after release", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never admitted after capacity freed")
	}
	a.release()
	if got := svc.met.queueDepth.Value(); got != 0 {
		t.Fatalf("queue depth after drain = %v; want 0", got)
	}
}

func TestAdmissionQueueWaitExpires(t *testing.T) {
	svc := New(Config{MaxInFlight: 1, MaxQueue: 4, QueueWait: 20 * time.Millisecond})
	a := svc.admit
	if v, _ := a.acquire(context.Background()); v != admitOK {
		t.Fatal("first acquire refused")
	}
	defer a.release()
	verdict, err := a.acquire(context.Background())
	if verdict != admitWaitExpired || err != nil {
		t.Fatalf("expired acquire = (%v, %v); want admitWaitExpired", verdict, err)
	}
}

func TestAdmissionQueuedContextCancel(t *testing.T) {
	svc := New(Config{MaxInFlight: 1, MaxQueue: 4, QueueWait: time.Minute})
	a := svc.admit
	if v, _ := a.acquire(context.Background()); v != admitOK {
		t.Fatal("first acquire refused")
	}
	defer a.release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Fast-path miss, queue entry, then the dead context wins the select.
	if _, err := a.acquire(ctx); err != context.Canceled {
		t.Fatalf("cancelled queued acquire err = %v; want context.Canceled", err)
	}
	if got := svc.met.queueDepth.Value(); got != 0 {
		t.Fatalf("queue depth after cancel = %v; want 0 (slot leaked)", got)
	}
}

// waitForQueueDepth polls the queue-depth gauge until it reaches want.
func waitForQueueDepth(t *testing.T, svc *Service, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for svc.met.queueDepth.Value() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %v (at %v)", want, svc.met.queueDepth.Value())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmittedMiddlewareSheds is the HTTP-level saturation contract: with
// the in-flight bound and queue both full, the middleware answers 429 with
// a parseable Retry-After header, a strict-JSON body carrying the same
// hint, and one shed-counter increment; when capacity frees, the queued
// request is admitted and served. The wrapped handler records its own
// concurrency so the test proves the configured bound is never exceeded.
func TestAdmittedMiddlewareSheds(t *testing.T) {
	svc := New(Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: time.Minute})
	var inHandler, maxInHandler atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	h := svc.admitted("/v1/test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inHandler.Add(1)
		defer inHandler.Add(-1)
		for {
			old := maxInHandler.Load()
			if n <= old || maxInHandler.CompareAndSwap(old, n) {
				break
			}
		}
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	serve := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/test", nil))
		return rec
	}

	var wg sync.WaitGroup
	first := make(chan *httptest.ResponseRecorder, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		first <- serve()
	}()
	<-entered // the first request holds the only in-flight slot

	queuedResult := make(chan *httptest.ResponseRecorder, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		queuedResult <- serve()
	}()
	waitForQueueDepth(t, svc, 1)

	// Queue full: the third request is shed, now, with the full refusal
	// contract.
	rec := serve()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d; want 429", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q; want a positive integer of seconds", ra)
	}
	var body struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("shed body is not strict JSON: %v (%s)", err, rec.Body.Bytes())
	}
	if body.Error == "" || body.RetryAfterSeconds != secs {
		t.Fatalf("shed body = %+v; want an error and retry_after_seconds == header %d", body, secs)
	}
	if got := svc.met.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d; want 1", got)
	}
	if got := svc.Stats().Shed; got != 1 {
		t.Fatalf("statsz shed = %d; want 1", got)
	}

	// Free capacity: the queued request must be admitted and served.
	release <- struct{}{} // first request finishes
	release <- struct{}{} // queued request runs
	wg.Wait()
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("first request status = %d; want 200", rec.Code)
	}
	if rec := <-queuedResult; rec.Code != http.StatusOK {
		t.Fatalf("queued request status = %d; want 200 once capacity freed", rec.Code)
	}
	if got := maxInHandler.Load(); got > 1 {
		t.Fatalf("handler concurrency reached %d; the in-flight bound is 1", got)
	}
}

// TestRetryAfterSeconds pins the clamp: sub-second waits round up to one
// second, long waits cap at the maximum.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{10 * time.Millisecond, 1},
		{1500 * time.Millisecond, 2},
		{5 * time.Minute, maxRetryAfterSeconds},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.wait); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d; want %d", c.wait, got, c.want)
		}
	}
}
