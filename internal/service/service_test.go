package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"memstream/internal/device"
	"memstream/internal/sim"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// newTestServer starts an httptest server over a fresh service.
func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

// post sends a JSON body and returns status plus response bytes.
func post(t *testing.T, srv *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

const goalJSON = `{"energy_saving":0.7,"capacity_utilisation":0.88,"lifetime":"7 years"}`

func TestHealthz(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q; want application/json", ct)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz body: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q; want ok", h.Status)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %v; want >= 0", h.UptimeSeconds)
	}
	if h.Version == "" {
		t.Error("version missing (debug.ReadBuildInfo should always yield one)")
	}
}

func TestDimensionEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/dimension", `{"rate":"1024 kbps","goal":`+goalJSON+`}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp DimensionResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp.Feasible {
		t.Fatal("the paper's Fig. 3b goal must be feasible at 1024 kbps")
	}
	if resp.BufferBits <= 0 {
		t.Errorf("buffer bits = %v; want positive", resp.BufferBits)
	}
	if len(resp.Requirements) != 4 {
		t.Errorf("requirements = %d; want 4", len(resp.Requirements))
	}
	if resp.BreakEvenBits <= 0 || resp.BreakEvenBits >= resp.BufferBits {
		t.Errorf("break-even %v should be positive and below the dimensioned buffer %v (the paper's headline gap)",
			resp.BreakEvenBits, resp.BufferBits)
	}
}

func TestDimensionImprovedDeviceDiffers(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	_, def := post(t, srv, "/v1/dimension", `{"rate":"1024 kbps","goal":`+goalJSON+`}`)
	_, imp := post(t, srv, "/v1/dimension", `{"device":{"name":"improved"},"rate":"1024 kbps","goal":`+goalJSON+`}`)
	if bytes.Equal(def, imp) {
		t.Error("default and improved devices must not share a cache entry")
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/sweep",
		`{"goal":`+goalJSON+`,"min_rate":"32 kbps","max_rate":"4096 kbps","points":16}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Points) != 16 {
		t.Fatalf("points = %d; want 16", len(resp.Points))
	}
	if len(resp.Regimes) == 0 {
		t.Error("sweep should segment into at least one regime")
	}
	if len(resp.DominanceShare) == 0 {
		t.Error("dominance share missing")
	}
}

func TestSimulateEndpointWithReplicas(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/simulate",
		`{"rate":"1024 kbps","buffer":"64 KiB","duration":"10 s","replicas":3}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Runs) != 3 {
		t.Fatalf("runs = %d; want 3", len(resp.Runs))
	}
	for i, run := range resp.Runs {
		if run.Seed != uint64(1+i) {
			t.Errorf("run %d seed = %d; want %d", i, run.Seed, 1+i)
		}
		if run.RefillCycles <= 0 {
			t.Errorf("run %d refill cycles = %d; want positive", i, run.RefillCycles)
		}
		if run.Underruns != 0 {
			t.Errorf("run %d underruns = %d; a provisioned CBR stream must not underrun", i, run.Underruns)
		}
		// A writing CBR stream wears both components, so the projections
		// are finite and present (nil would mean an unbounded projection).
		if run.SpringsLifetimeYears == nil || *run.SpringsLifetimeYears <= 0 {
			t.Errorf("run %d springs projection = %v; want a positive finite value", i, run.SpringsLifetimeYears)
		}
		if run.ProbesLifetimeYears == nil || *run.ProbesLifetimeYears <= 0 {
			t.Errorf("run %d probes projection = %v; want a positive finite value", i, run.ProbesLifetimeYears)
		}
	}
}

func TestBreakEvenEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/breakeven", `{"rate":"1024 kbps"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp BreakEvenResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.MEMSBits <= 0 || resp.DiskBits <= 0 {
		t.Fatalf("break-even buffers must be positive: %+v", resp)
	}
	if resp.DiskOverMEMS < 100 {
		t.Errorf("disk/MEMS ratio = %.1f; the paper reports a 3-orders-of-magnitude gap", resp.DiskOverMEMS)
	}
}

func TestMultiStreamEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/multistream",
		`{"goal":`+goalJSON+`,"streams":[
			{"name":"record","rate":"768 kbps","write_fraction":1},
			{"name":"play","rate":"512 kbps","write_fraction":0}]}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp MultiStreamResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp.Feasible {
		t.Fatalf("two-stream mix should be feasible: %s", body)
	}
	if len(resp.Buffers) != 2 {
		t.Fatalf("buffers = %d; want 2", len(resp.Buffers))
	}
	if resp.Buffers[0].Name != "record" || resp.Buffers[1].Name != "play" {
		t.Errorf("buffer order %q, %q; want request order", resp.Buffers[0].Name, resp.Buffers[1].Name)
	}
	if resp.TotalBufferBits <= resp.Buffers[0].BufferBits {
		t.Error("total buffer should exceed any single stream's buffer")
	}
}

func TestValidationFailures(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"unknown field", "/v1/dimension", `{"rate":"1024 kbps","goal":` + goalJSON + `,"bogus":1}`},
		{"malformed json", "/v1/dimension", `{"rate":`},
		{"trailing garbage", "/v1/dimension", `{"rate":"1024 kbps","goal":` + goalJSON + `}{}`},
		{"missing rate", "/v1/dimension", `{"goal":` + goalJSON + `}`},
		{"bad rate unit", "/v1/dimension", `{"rate":"10 parsecs","goal":` + goalJSON + `}`},
		{"negative rate", "/v1/dimension", `{"rate":-5,"goal":` + goalJSON + `}`},
		{"energy goal out of range", "/v1/dimension", `{"rate":"1024 kbps","goal":{"energy_saving":1.5,"capacity_utilisation":0.88,"lifetime":"7 years"}}`},
		{"unknown device", "/v1/dimension", `{"device":{"name":"quantum"},"rate":"1024 kbps","goal":` + goalJSON + `}`},
		{"sweep inverted range", "/v1/sweep", `{"goal":` + goalJSON + `,"min_rate":"4096 kbps","max_rate":"32 kbps","points":8}`},
		{"sweep too few points", "/v1/sweep", `{"goal":` + goalJSON + `,"min_rate":"32 kbps","max_rate":"4096 kbps","points":1}`},
		{"sweep too many points", "/v1/sweep", `{"goal":` + goalJSON + `,"min_rate":"32 kbps","max_rate":"4096 kbps","points":100000}`},
		{"simulate missing buffer", "/v1/simulate", `{"rate":"1024 kbps"}`},
		{"simulate bad stream kind", "/v1/simulate", `{"rate":"1024 kbps","buffer":"64 KiB","stream":"chaos"}`},
		{"simulate too many replicas", "/v1/simulate", `{"rate":"1024 kbps","buffer":"64 KiB","replicas":10000}`},
		{"simulate duration over cap", "/v1/simulate", `{"rate":"1024 kbps","buffer":"64 KiB","duration":"100 years"}`},
		{"sweep negative workers", "/v1/sweep", `{"goal":` + goalJSON + `,"min_rate":"32 kbps","max_rate":"4096 kbps","points":8,"workers":-4}`},
		{"simulate bad best effort", "/v1/simulate", `{"rate":"1024 kbps","buffer":"64 KiB","best_effort":1.5}`},
		{"simulate rate above media rate", "/v1/simulate", `{"rate":"100 Gbps","buffer":"64 KiB"}`},
		{"breakeven missing rate", "/v1/breakeven", `{}`},
		{"multistream no streams", "/v1/multistream", `{"goal":` + goalJSON + `,"streams":[]}`},
		{"multistream bad write fraction", "/v1/multistream", `{"goal":` + goalJSON + `,"streams":[{"name":"a","rate":"768 kbps","write_fraction":2}]}`},
		{"multistream inadmissible mix", "/v1/multistream", `{"goal":` + goalJSON + `,"streams":[{"name":"a","rate":"300 Mbps","write_fraction":1}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := post(t, srv, c.path, c.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s; want 400", status, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Errorf("error body %s must carry an error message", body)
			}
		})
	}
}

func TestOversizedBodyRejectedWith413(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	// The 2 MiB value sits in a known field so the decoder hits the byte
	// limit mid-token rather than failing on an unknown key first.
	big := `{"rate":"` + strings.Repeat("x", 2<<20) + `","goal":` + goalJSON + `}`
	status, body := post(t, srv, "/v1/dimension", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %.200s; want 413", status, body)
	}
}

func TestImprovedDeviceSpecMatchesLibraryDefinition(t *testing.T) {
	dev, err := DeviceSpec{Name: "improved"}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if want := device.ImprovedMEMS(); dev != want {
		t.Errorf("service improved device %+v diverges from device.ImprovedMEMS %+v", dev, want)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, err := http.Get(srv.URL + "/v1/dimension")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/dimension status = %d; want 405", resp.StatusCode)
	}
}

func TestDeadlineAbortsSweep(t *testing.T) {
	_, srv := newTestServer(t, Config{Timeout: time.Nanosecond})
	status, body := post(t, srv, "/v1/sweep",
		`{"goal":`+goalJSON+`,"min_rate":"32 kbps","max_rate":"4096 kbps","points":256}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s; want 504", status, body)
	}
}

func TestDeadlineAbortsMultiStream(t *testing.T) {
	svc := New(Config{Timeout: time.Nanosecond})
	_, err := svc.MultiStream(context.Background(), MultiStreamRequest{
		Goal:    GoalSpec{EnergySaving: 0.7, CapacityUtilisation: 0.88, Lifetime: "7 years"},
		Streams: []MultiStreamSpec{{Name: "rec", Rate: "768 kbps", WriteFraction: 1}},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want deadline exceeded", err)
	}
}

func TestCacheHitReturnsByteIdenticalBody(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	body := `{"rate":"1024 kbps","goal":` + goalJSON + `}`
	status1, first := post(t, srv, "/v1/dimension", body)
	status2, second := post(t, srv, "/v1/dimension", body)
	if status1 != http.StatusOK || status2 != http.StatusOK {
		t.Fatalf("statuses %d, %d; want 200, 200", status1, status2)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit body differs:\n%s\n%s", first, second)
	}
	st := svc.Stats()
	if st.Cache.Hits == 0 {
		t.Errorf("stats = %+v; the second request must hit the cache", st.Cache)
	}
	if st.Served != 2 {
		t.Errorf("served = %d; want 2", st.Served)
	}
}

func TestEquivalentSpellingsShareACacheEntry(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	// 1024 kbps spelled three ways: the fingerprint is computed on the
	// parsed request, not the raw body.
	_, a := post(t, srv, "/v1/dimension", `{"rate":"1024 kbps","goal":`+goalJSON+`}`)
	_, b := post(t, srv, "/v1/dimension", `{"rate":1024000,"goal":`+goalJSON+`}`)
	_, c := post(t, srv, "/v1/dimension", `{"device":{"name":"default"},"rate":"1024kbit/s","goal":`+goalJSON+`}`)
	if !bytes.Equal(a, b) || !bytes.Equal(a, c) {
		t.Fatal("equivalent spellings must return byte-identical cached bodies")
	}
	if st := svc.CacheStats(); st.Entries != 1 {
		t.Errorf("entries = %d; want 1 shared entry", st.Entries)
	}
}

func TestWorkerCountExcludedFromFingerprint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	req := `{"goal":` + goalJSON + `,"min_rate":"32 kbps","max_rate":"4096 kbps","points":8`
	_, seq := post(t, srv, "/v1/sweep", req+`,"workers":1}`)
	_, par := post(t, srv, "/v1/sweep", req+`,"workers":4}`)
	if !bytes.Equal(seq, par) {
		t.Fatal("worker bound must not change the response bytes")
	}
}

func TestConcurrentIdenticalRequestsSingleFlight(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		svc, srv := newTestServer(t, Config{MaxWorkers: workers})
		body := `{"goal":` + goalJSON + `,"min_rate":"32 kbps","max_rate":"4096 kbps","points":24}`
		const clients = 8
		results := make([][]byte, clients)
		var wg sync.WaitGroup
		wg.Add(clients)
		for i := 0; i < clients; i++ {
			go func(i int) {
				defer wg.Done()
				resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				defer resp.Body.Close()
				results[i], _ = io.ReadAll(resp.Body)
			}(i)
		}
		wg.Wait()
		for i := 1; i < clients; i++ {
			if !bytes.Equal(results[0], results[i]) {
				t.Fatalf("workers=%d: client %d response differs from client 0", workers, i)
			}
		}
		st := svc.CacheStats()
		if st.Entries != 1 {
			t.Errorf("workers=%d: entries = %d; want 1", workers, st.Entries)
		}
		if st.Misses != 1 {
			t.Errorf("workers=%d: misses = %d; only the flight leader is a miss, waiters count as hits", workers, st.Misses)
		}
		if st.Hits != clients-1 {
			t.Errorf("workers=%d: hits = %d; want %d (every non-leader client)", workers, st.Hits, clients-1)
		}
	}
}

func TestStatszEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	post(t, srv, "/v1/breakeven", `{"rate":"1024 kbps"}`)
	post(t, srv, "/v1/breakeven", `{"rate":"1024 kbps"}`)
	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	if st.Served != 2 || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("stats = %+v; want 2 served, 1 hit, 1 miss", st)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d; want 0 at rest", st.InFlight)
	}
}

func TestLibraryPathSharesCacheWithHTTP(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	typedResp, err := svc.Dimension(context.Background(), DimensionRequest{
		Rate: "1024 kbps",
		Goal: GoalSpec{EnergySaving: 0.7, CapacityUtilisation: 0.88, Lifetime: "7 years"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, httpBody := post(t, srv, "/v1/dimension", `{"rate":"1024 kbps","goal":`+goalJSON+`}`)
	var httpResp DimensionResponse
	if err := json.Unmarshal(httpBody, &httpResp); err != nil {
		t.Fatal(err)
	}
	if typedResp.BufferBits != httpResp.BufferBits || typedResp.Dominant != httpResp.Dominant {
		t.Error("library and HTTP answers diverge")
	}
	if st := svc.CacheStats(); st.Hits != 1 {
		t.Errorf("hits = %d; the HTTP request must reuse the library call's entry", st.Hits)
	}
}

func TestNaNInputsRejectedAsValidation(t *testing.T) {
	svc := New(Config{})
	ctx := context.Background()
	nan := math.NaN()
	var verr *ValidationError
	if _, err := svc.Dimension(ctx, DimensionRequest{
		Rate: "1024 kbps",
		Goal: GoalSpec{EnergySaving: nan, CapacityUtilisation: 0.88, Lifetime: "7 years"},
	}); !errors.As(err, &verr) {
		t.Errorf("NaN energy goal: err = %v; want a ValidationError", err)
	}
	if _, err := svc.Simulate(ctx, SimulateRequest{
		Rate: "1024 kbps", Buffer: "64 KiB", BestEffort: &nan,
	}); !errors.As(err, &verr) {
		t.Errorf("NaN best effort: err = %v; want a ValidationError", err)
	}
	if _, err := svc.Dimension(ctx, DimensionRequest{
		Rate: "1024 kbps",
		Goal: GoalSpec{EnergySaving: 0.7, CapacityUtilisation: 0.88, Lifetime: "NaN"},
	}); !errors.As(err, &verr) {
		t.Errorf("NaN lifetime string: err = %v; want a ValidationError", err)
	}
	if _, err := svc.MultiStream(ctx, MultiStreamRequest{
		Goal:    GoalSpec{EnergySaving: 0.7, CapacityUtilisation: 0.88, Lifetime: "7 years"},
		Streams: []MultiStreamSpec{{Name: "a", Rate: "768 kbps", WriteFraction: nan}},
	}); !errors.As(err, &verr) {
		t.Errorf("NaN write fraction: err = %v; want a ValidationError", err)
	}
}

func TestQuantityRejectsNonScalar(t *testing.T) {
	var q Quantity
	if err := json.Unmarshal([]byte(`{"a":1}`), &q); err == nil {
		t.Error("object must not unmarshal into a Quantity")
	}
	if err := json.Unmarshal([]byte(`[1]`), &q); err == nil {
		t.Error("array must not unmarshal into a Quantity")
	}
	if err := json.Unmarshal([]byte(`3.5`), &q); err != nil || q != "3.5" {
		t.Errorf("number: q=%q err=%v; want 3.5, nil", q, err)
	}
}

// TestSimulateDiskDevice exercises the pluggable-backend path of
// /v1/simulate: "disk" selects the 1.8-inch baseline, which needs a
// megabyte-scale buffer and reports no MEMS wear projections.
func TestSimulateDiskDevice(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/simulate",
		`{"device":{"name":"disk"},"rate":"1024 kbps","buffer":"8 MB","duration":"120s"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(resp.Runs))
	}
	run := resp.Runs[0]
	if run.Underruns != 0 {
		t.Errorf("disk run underran %d times through an 8 MB buffer", run.Underruns)
	}
	if run.RefillCycles == 0 {
		t.Error("disk run completed no refill cycles")
	}
	if run.SpringsLifetimeYears != nil || run.ProbesLifetimeYears != nil {
		t.Error("disk runs must omit the MEMS wear projections")
	}
	// The same shape against the MEMS default must NOT share a cache entry:
	// the backend kind is fingerprinted.
	status, body = post(t, srv, "/v1/simulate",
		`{"device":{"name":"mems"},"rate":"1024 kbps","buffer":"8 MB","duration":"120s"}`)
	if status != http.StatusOK {
		t.Fatalf("mems status = %d, body %s", status, body)
	}
	var memsResp SimulateResponse
	if err := json.Unmarshal(body, &memsResp); err != nil {
		t.Fatal(err)
	}
	if memsResp.Runs[0].EnergyPerBitJoules == run.EnergyPerBitJoules {
		t.Error("mems and disk runs returned identical energy — fingerprint collision?")
	}
	if memsResp.Runs[0].SpringsLifetimeYears == nil {
		t.Error("mems runs must keep the wear projections")
	}
}

// TestSimulateDeviceValidation locks in the validated device field: unknown
// names, disk-on-analytical-endpoints and disk durability overrides are all
// rejected with 400s.
func TestSimulateDeviceValidation(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	cases := []struct {
		name, path, body, wantErr string
	}{
		{"unknown device", "/v1/simulate",
			`{"device":{"name":"floppy"},"rate":"1024 kbps","buffer":"64 KiB"}`, "unknown device"},
		{"disk durability overrides", "/v1/simulate",
			`{"device":{"name":"disk","probe_write_cycles":200},"rate":"1024 kbps","buffer":"8 MB"}`,
			"durability overrides do not apply"},
		{"disk on dimension", "/v1/dimension",
			`{"device":{"name":"disk"},"rate":"1024 kbps","goal":` + goalJSON + `}`,
			"only supported by simulate"},
		{"disk on sweep", "/v1/sweep",
			`{"device":{"name":"disk"},"goal":` + goalJSON + `,"min_rate":"32 kbps","max_rate":"64 kbps","points":2}`,
			"only supported by simulate"},
	}
	for _, c := range cases {
		status, body := post(t, srv, c.path, c.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", c.name, status, body)
			continue
		}
		if !strings.Contains(string(body), c.wantErr) {
			t.Errorf("%s: body %s does not mention %q", c.name, body, c.wantErr)
		}
	}
}

// TestSimulateMEMSAlias locks in that "mems" and "default" are the same
// device and therefore share a cache entry (byte-identical bodies).
func TestSimulateMEMSAlias(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	_, a := post(t, srv, "/v1/simulate", `{"device":{"name":"mems"},"rate":"1024 kbps","buffer":"64 KiB","duration":"60s"}`)
	_, b := post(t, srv, "/v1/simulate", `{"device":{"name":"default"},"rate":"1024 kbps","buffer":"64 KiB","duration":"60s"}`)
	if !bytes.Equal(a, b) {
		t.Error("mems and default aliases returned different bodies")
	}
	if hits := svc.CacheStats().Hits; hits == 0 {
		t.Error("alias request should have hit the cache")
	}
}

// TestSimulateVideoEndpoint drives /v1/simulate with the frame-accurate
// video workload: a 200 with plausible playback metrics, and replicas
// re-seeded per run exactly like VBR.
func TestSimulateVideoEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/simulate",
		`{"rate":"1024 kbps","buffer":"64 KiB","duration":"30 s","stream":"video","replicas":2}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Runs) != 2 {
		t.Fatalf("runs = %d; want 2", len(resp.Runs))
	}
	for i, run := range resp.Runs {
		if run.Seed != uint64(1+i) {
			t.Errorf("run %d seed = %d; want %d (replica re-seeding)", i, run.Seed, 1+i)
		}
		if run.RefillCycles <= 0 {
			t.Errorf("run %d completed no refill cycles", i)
		}
		if run.Underruns != 0 || run.RebufferEpisodes != 0 {
			t.Errorf("run %d stalled (%d underruns, %d episodes) through a 64 KiB buffer",
				i, run.Underruns, run.RebufferEpisodes)
		}
		if run.StartupDelaySeconds <= 0 {
			t.Errorf("run %d startup delay = %v; want positive", i, run.StartupDelaySeconds)
		}
	}
	// Two seed-varied replicas of a jittered trace must not be identical.
	if resp.Runs[0].EnergyPerBitJoules == resp.Runs[1].EnergyPerBitJoules {
		t.Error("video replicas returned identical energies — re-seeding lost?")
	}
}

// TestSimulateVideoEquivalentSpellingsShareACacheEntry locks in the
// canonical video fingerprint: an omitted video object, an empty one and
// one spelling out the library defaults are byte-identical cache hits.
func TestSimulateVideoEquivalentSpellingsShareACacheEntry(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	base := `"rate":"1024 kbps","buffer":"64 KiB","duration":"10 s","stream":"video"`
	_, a := post(t, srv, "/v1/simulate", `{`+base+`}`)
	_, b := post(t, srv, "/v1/simulate", `{`+base+`,"video":{}}`)
	_, c := post(t, srv, "/v1/simulate",
		`{`+base+`,"video":{"frame_rate":25,"gop_length":12,"ip_distance":3,"weight_i":5,"weight_p":3,"weight_b":1,"jitter":0.2}}`)
	if !bytes.Equal(a, b) || !bytes.Equal(a, c) {
		t.Fatal("equivalent video spellings must return byte-identical cached bodies")
	}
	if st := svc.CacheStats(); st.Entries != 1 {
		t.Errorf("entries = %d; want 1 shared entry", st.Entries)
	}
	// A genuinely different GOP length must not share the entry.
	_, d := post(t, srv, "/v1/simulate", `{`+base+`,"video":{"gop_length":15}}`)
	if bytes.Equal(a, d) {
		t.Error("different GOP lengths shared a cache entry")
	}
	// An explicit zero jitter is a different workload than the 20 % default,
	// not a respelling of it.
	_, e := post(t, srv, "/v1/simulate", `{`+base+`,"video":{"jitter":0}}`)
	if bytes.Equal(a, e) {
		t.Error("explicit zero jitter shared the default-jitter cache entry")
	}
}

// TestSimulateTraceEndpoint drives /v1/simulate with an inline frame trace:
// a 200, byte-identical cache hits for equivalent spellings (unit strings
// and timestamp offsets), and strict field validation.
func TestSimulateTraceEndpoint(t *testing.T) {
	svc, srv := newTestServer(t, Config{})
	// Four 40 ms frames around 1 Mbps.
	frames := `[{"timestamp":0,"size":"6250bit","class":"I"},
		{"timestamp":"40ms","size":"4000bit"},
		{"timestamp":0.08,"size":"3000bit","class":"B"},
		{"timestamp":0.12,"size":"4500bit","class":"P"}]`
	status, body := post(t, srv, "/v1/simulate",
		`{"buffer":"64 KiB","duration":"10 s","stream":"trace","frames":`+frames+`}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Runs) != 1 || resp.Runs[0].RefillCycles == 0 {
		t.Fatalf("trace run produced no cycles: %s", body)
	}
	if resp.Runs[0].Underruns != 0 {
		t.Errorf("trace run underran %d times through a 64 KiB buffer", resp.Runs[0].Underruns)
	}
	// The same trace with second-spelled timestamps and a constant offset
	// must hit the same entry byte-identically.
	shifted := `[{"timestamp":"1s","size":"6250bit","class":"I"},
		{"timestamp":1.04,"size":"4000bit","class":"P"},
		{"timestamp":1.08,"size":"3000bit","class":"B"},
		{"timestamp":"1.12","size":"4500bit"}]`
	status, body2 := post(t, srv, "/v1/simulate",
		`{"buffer":"64 KiB","duration":"10 s","stream":"trace","frames":`+shifted+`}`)
	if status != http.StatusOK {
		t.Fatalf("shifted status = %d, body %s", status, body2)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("equivalent trace spellings must return byte-identical cached bodies")
	}
	if st := svc.CacheStats(); st.Entries != 1 {
		t.Errorf("entries = %d; want 1 shared entry", st.Entries)
	}
}

// TestSimulateVideoTraceValidation locks in the 400s of the new kinds,
// including the acceptance criterion that peak demand at or above the
// backend media rate is rejected.
func TestSimulateVideoTraceValidation(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"video peak above media rate",
			`{"rate":"90 Mbps","buffer":"10 MiB","stream":"video"}`,
			"peak demand"},
		{"trace peak above media rate",
			`{"buffer":"10 MiB","stream":"trace","frames":[
				{"timestamp":0,"size":"8Mbit"},{"timestamp":0.04,"size":"8Mbit"}]}`,
			"peak demand"},
		{"video object on cbr",
			`{"rate":"1024 kbps","buffer":"64 KiB","video":{"frame_rate":30}}`,
			"video object only applies"},
		{"frames on video",
			`{"rate":"1024 kbps","buffer":"64 KiB","stream":"video","frames":[{"timestamp":0,"size":"4000bit"}]}`,
			"frames only apply"},
		{"trace without frames",
			`{"buffer":"64 KiB","stream":"trace"}`,
			"frames is required"},
		{"trace with rate",
			`{"rate":"1024 kbps","buffer":"64 KiB","stream":"trace","frames":[{"timestamp":0,"size":"4000bit"}]}`,
			"rate does not apply"},
		{"bad jitter",
			`{"rate":"1024 kbps","buffer":"64 KiB","stream":"video","video":{"jitter":1.5}}`,
			"jitter"},
		{"absurd frame rate",
			`{"rate":"1024 kbps","buffer":"64 KiB","duration":"1 h","stream":"video","video":{"frame_rate":1e9}}`,
			"frame_rate"},
		{"absurd gop length",
			`{"rate":"1024 kbps","buffer":"64 KiB","stream":"video","video":{"gop_length":100000}}`,
			"gop_length"},
		{"bad frame class",
			`{"buffer":"64 KiB","stream":"trace","frames":[{"timestamp":0,"size":"4000bit","class":"X"}]}`,
			"frame class"},
		{"non-increasing timestamps",
			`{"buffer":"64 KiB","stream":"trace","frames":[
				{"timestamp":0,"size":"4000bit"},{"timestamp":0,"size":"4000bit"}]}`,
			"strictly increasing"},
		{"missing timestamp",
			`{"buffer":"64 KiB","stream":"trace","frames":[{"size":"4000bit"}]}`,
			"timestamp is required"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, body := post(t, srv, "/v1/simulate", c.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s; want 400", status, body)
			}
			if !strings.Contains(string(body), c.wantErr) {
				t.Errorf("body %s does not mention %q", body, c.wantErr)
			}
		})
	}
}

// TestSimulateVideoMatchesLibraryRun is the cross-layer parity check: the
// service's "stream": "video" answer must equal a direct sim.RunConfig with
// the same spec and seed.
func TestSimulateVideoMatchesLibraryRun(t *testing.T) {
	svc := New(Config{})
	resp, err := svc.Simulate(context.Background(), SimulateRequest{
		Rate: "1024 kbps", Buffer: "64 KiB", Duration: "30 s", Stream: "video", Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.VideoSpec(1024*units.Kbps, 9)
	cfg := sim.Config{
		Device:     device.DefaultMEMS(),
		DRAM:       device.DefaultDRAM(),
		Buffer:     64 * units.KiB,
		Spec:       spec,
		BestEffort: workload.NewBestEffortProcess(0.05, device.DefaultMEMS().MediaRate(), 9),
		Duration:   30 * units.Second,
		Seed:       9,
	}
	stats, err := sim.RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := resp.Runs[0]
	if run.RefillCycles != stats.RefillCycles {
		t.Errorf("refill cycles: service %d vs library %d", run.RefillCycles, stats.RefillCycles)
	}
	if run.StreamedBits != stats.StreamedBits.Bits() {
		t.Errorf("streamed bits: service %v vs library %v", run.StreamedBits, stats.StreamedBits.Bits())
	}
	if run.EnergyPerBitJoules != stats.PerBitEnergy().JoulesPerBit() {
		t.Errorf("per-bit energy: service %v vs library %v", run.EnergyPerBitJoules, stats.PerBitEnergy().JoulesPerBit())
	}
	if run.Underruns != stats.Underruns || run.RebufferEpisodes != stats.RebufferEpisodes {
		t.Errorf("stall metrics diverge: service (%d, %d) vs library (%d, %d)",
			run.Underruns, run.RebufferEpisodes, stats.Underruns, stats.RebufferEpisodes)
	}
}

// TestSimulateDiskUndersizedBufferIs400 locks in the status mapping for the
// disk backend's most likely user error: a MEMS-scale buffer that cannot
// cover the spin-up drain is detected by the run itself and must surface as
// a 400, not a 500.
func TestSimulateDiskUndersizedBufferIs400(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/simulate",
		`{"device":{"name":"disk"},"rate":"1024 kbps","buffer":"64 KiB"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", status, body)
	}
	if !strings.Contains(string(body), "positioning time") {
		t.Errorf("body %s does not explain the spin-up drain", body)
	}
}

// multiSimBody is a canonical two-stream multisim request body.
const multiSimBody = `{"streams":[` +
	`{"name":"playback","rate":"1024 kbps","buffer":"128 KB","write_fraction":0},` +
	`{"name":"recording","rate":"512 kbps","buffer":"64 KB","write_fraction":1}` +
	`],"duration":"30 s","replicas":2}`

func TestMultiSimEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/multisim", multiSimBody)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp MultiSimResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Policy != "round-robin" {
		t.Errorf("policy = %q; want the round-robin default", resp.Policy)
	}
	if len(resp.Runs) != 2 {
		t.Fatalf("runs = %d; want 2", len(resp.Runs))
	}
	for i, run := range resp.Runs {
		if run.Seed != uint64(1+i) {
			t.Errorf("run %d seed = %d; want %d", i, run.Seed, 1+i)
		}
		if run.WakeUps <= 0 {
			t.Errorf("run %d wake-ups = %d; want positive", i, run.WakeUps)
		}
		if run.Underruns != 0 {
			t.Errorf("run %d underruns = %d; provisioned buffers must not underrun", i, run.Underruns)
		}
		if run.SpringsLifetimeYears == nil || *run.SpringsLifetimeYears <= 0 {
			t.Errorf("run %d springs projection = %v; want positive", i, run.SpringsLifetimeYears)
		}
		if len(run.Streams) != 2 {
			t.Fatalf("run %d has %d stream records; want 2", i, len(run.Streams))
		}
		if run.Streams[0].Name != "playback" || run.Streams[1].Name != "recording" {
			t.Errorf("run %d stream order = %q, %q; want request order", i, run.Streams[0].Name, run.Streams[1].Name)
		}
		shares := 0.0
		for _, st := range run.Streams {
			if st.StreamedBits <= 0 {
				t.Errorf("run %d stream %q streamed nothing", i, st.Name)
			}
			if st.RefillCycles <= 0 {
				t.Errorf("run %d stream %q never refilled", i, st.Name)
			}
			shares += st.EnergyShare
		}
		if math.Abs(shares-1) > 1e-9 {
			t.Errorf("run %d energy shares sum to %g; want 1", i, shares)
		}
		if run.Streams[0].StartupDelaySeconds >= run.Streams[1].StartupDelaySeconds {
			t.Errorf("run %d startup delays %g, %g; the second-serviced stream starts later",
				i, run.Streams[0].StartupDelaySeconds, run.Streams[1].StartupDelaySeconds)
		}
	}
}

func TestMultiSimPolicySpellingsAndFingerprint(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	canonical := `{"policy":"round-robin","streams":[{"name":"a","rate":"1024 kbps","buffer":"128 KB"}],"duration":"10 s"}`
	alias := `{"policy":"rr","streams":[{"name":"a","rate":1024000,"buffer":"128 KB"}],"duration":10}`
	_, a := post(t, srv, "/v1/multisim", canonical)
	_, b := post(t, srv, "/v1/multisim", alias)
	if !bytes.Equal(a, b) {
		t.Error("equivalent multisim spellings must share a cache entry byte for byte")
	}
	status, c := post(t, srv, "/v1/multisim",
		`{"policy":"edf","streams":[{"name":"a","rate":"1024 kbps","buffer":"128 KB"}],"duration":"10 s"}`)
	if status != http.StatusOK {
		t.Fatalf("edf status = %d, body %s", status, c)
	}
	var resp MultiSimResponse
	if err := json.Unmarshal(c, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Policy != "most-urgent" {
		t.Errorf("policy = %q; want the canonical most-urgent spelling", resp.Policy)
	}
	if bytes.Equal(a, c) {
		t.Error("different policies must not share a response body")
	}
}

// TestMultiSimPriorityPolicy exercises the "priority" policy end to end: the
// "prio" alias canonicalizes, the per-stream priority field is accepted, and
// a different priority assignment gets its own cache entry.
func TestMultiSimPriorityPolicy(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	body := func(moviePrio, cameraPrio int) string {
		return fmt.Sprintf(`{"policy":"prio","streams":[`+
			`{"name":"movie","rate":"1024 kbps","buffer":"256 KB","priority":%d},`+
			`{"name":"camera","rate":"512 kbps","buffer":"128 KB","write_fraction":1,"priority":%d}`+
			`],"duration":"30 s"}`, moviePrio, cameraPrio)
	}
	status, a := post(t, srv, "/v1/multisim", body(1, 0))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, a)
	}
	var resp MultiSimResponse
	if err := json.Unmarshal(a, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Policy != "priority" {
		t.Errorf("policy = %q; want the canonical priority spelling", resp.Policy)
	}
	if resp.Runs[0].Underruns != 0 {
		t.Errorf("underruns = %d; provisioned buffers must not underrun", resp.Runs[0].Underruns)
	}
	// Inverting the classes makes the camera go first within every wake-up,
	// so the run (and therefore the cached body) must change.
	if _, b := post(t, srv, "/v1/multisim", body(0, 1)); bytes.Equal(a, b) {
		t.Error("inverted stream priorities must not share a response body")
	}
}

func TestMultiSimValidation(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	cases := []struct {
		name, body, want string
	}{
		{"no streams", `{"streams":[]}`, "streams is required"},
		{"unknown policy", `{"policy":"fifo","streams":[{"name":"a","rate":"1 Mbps","buffer":"128 KB"}]}`, "unknown policy"},
		{"missing name", `{"streams":[{"rate":"1 Mbps","buffer":"128 KB"}]}`, "name is required"},
		{"unknown kind", `{"streams":[{"name":"a","stream":"trace","rate":"1 Mbps","buffer":"128 KB"}]}`, `streams[0].stream must be`},
		{"video object on cbr", `{"streams":[{"name":"a","rate":"1 Mbps","buffer":"128 KB","video":{}}]}`, "video object"},
		{"bad write fraction", `{"streams":[{"name":"a","rate":"1 Mbps","buffer":"128 KB","write_fraction":1.5}]}`, "write_fraction"},
		{"inadmissible aggregate", `{"streams":[{"name":"a","rate":"60 Mbps","buffer":"8 MB"},{"name":"b","rate":"60 Mbps","buffer":"8 MB"}]}`, "aggregate"},
		{"undersized buffer", `{"streams":[{"name":"a","rate":"1 Mbps","buffer":"64 bit"}]}`, "service round"},
		{"bad best effort", `{"best_effort":1.5,"streams":[{"name":"a","rate":"1 Mbps","buffer":"128 KB"}]}`, "best_effort"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, srv, "/v1/multisim", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s; want 400", status, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Errorf("body %s does not mention %q", body, tc.want)
			}
		})
	}
}

func TestMultiSimDiskBackend(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	status, body := post(t, srv, "/v1/multisim",
		`{"device":{"name":"disk"},"streams":[`+
			`{"name":"playback","rate":"1024 kbps","buffer":"4 MB","write_fraction":0},`+
			`{"name":"recording","rate":"512 kbps","buffer":"2 MB","write_fraction":1}`+
			`],"duration":"60 s"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp MultiSimResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	run := resp.Runs[0]
	if run.SpringsLifetimeYears != nil || run.ProbesLifetimeYears != nil {
		t.Error("disk runs must omit the MEMS wear projections")
	}
	if run.WakeUps <= 0 {
		t.Errorf("wake-ups = %d; want positive", run.WakeUps)
	}
}

func TestMultiSimMatchesLibraryRun(t *testing.T) {
	svc, _ := newTestServer(t, Config{})
	resp, err := svc.MultiSim(context.Background(), MultiSimRequest{
		Streams: []MultiSimStreamSpec{
			{Name: "playback", Rate: "1024 kbps", Buffer: "128 KiB", WriteFraction: ptr(0.0)},
			{Name: "recording", Rate: "512 kbps", Buffer: "64 KiB", WriteFraction: ptr(1.0)},
		},
		Duration:   "30 s",
		BestEffort: ptr(0.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.MultiConfig{
		Device: device.DefaultMEMS(),
		DRAM:   device.DefaultDRAM(),
		Streams: []sim.MultiStream{
			{Name: "playback", Spec: specWithWrite(workload.CBRSpec(1024*units.Kbps), 0), Buffer: 128 * units.KiB},
			{Name: "recording", Spec: specWithWrite(workload.CBRSpec(512*units.Kbps), 1), Buffer: 64 * units.KiB},
		},
		Duration: 30 * units.Second,
		Seed:     1,
	}
	stats, err := sim.RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resp.Runs[0].EnergyPerBitJoules, stats.Device.PerBitEnergy().JoulesPerBit(); got != want {
		t.Errorf("service per-bit energy %g != library %g", got, want)
	}
	if got, want := resp.Runs[0].WakeUps, stats.Device.RefillCycles; got != want {
		t.Errorf("service wake-ups %d != library %d", got, want)
	}
}

// specWithWrite overrides a spec's write fraction.
func specWithWrite(s workload.StreamSpec, write float64) workload.StreamSpec {
	s.WriteFraction = write
	return s
}

// ptr returns a pointer to v.
func ptr[T any](v T) *T { return &v }
