package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRateLimiterDisabled(t *testing.T) {
	if l := newRateLimiter(0, 10, 10); l != nil {
		t.Fatal("RateLimit 0 must disable the limiter")
	}
	var l *rateLimiter
	if ok, _ := l.allow("anyone"); !ok {
		t.Fatal("nil limiter must allow everything")
	}
	if got := l.clients(); got != 0 {
		t.Fatalf("nil limiter clients = %d; want 0", got)
	}
}

// fakeClock advances only when told, making token accrual exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func TestRateLimiterTokenBucket(t *testing.T) {
	l := newRateLimiter(1, 2, 16)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l.now = clock.now

	// The burst is spendable immediately; the bucket is then empty.
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("client"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, wait := l.allow("client")
	if ok {
		t.Fatal("third immediate request must be refused")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("refusal wait = %v; want (0, 1s] for a 1 rps bucket", wait)
	}

	// Exactly one token accrues per second at rate 1.
	clock.t = clock.t.Add(time.Second)
	if ok, _ := l.allow("client"); !ok {
		t.Fatal("request after a full token accrued must pass")
	}
	if ok, _ := l.allow("client"); ok {
		t.Fatal("the accrued token was already spent")
	}

	// Tokens cap at the burst: a long idle stretch does not bank more.
	clock.t = clock.t.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("client"); !ok {
			t.Fatalf("post-idle burst request %d refused", i)
		}
	}
	if ok, _ := l.allow("client"); ok {
		t.Fatal("burst must cap the banked tokens at 2")
	}
}

func TestRateLimiterDefaults(t *testing.T) {
	// Burst defaults to the integer ceiling of the rate, at least one.
	if l := newRateLimiter(2.5, 0, 0); l.burst != 3 {
		t.Errorf("burst for rate 2.5 = %v; want ceiling 3", l.burst)
	}
	if l := newRateLimiter(0.5, 0, 0); l.burst != 1 {
		t.Errorf("burst for rate 0.5 = %v; want at least 1", l.burst)
	}
	if l := newRateLimiter(1, 0, 0); l.maxClients != DefaultRateLimitClients {
		t.Errorf("maxClients = %d; want default %d", l.maxClients, DefaultRateLimitClients)
	}
}

// TestRateLimiterLRUBound floods the limiter with distinct keys and checks
// the table never grows past its bound and that eviction recycles the
// coldest key (which then returns with a full bucket — churn cannot be used
// to starve legitimate clients of their burst).
func TestRateLimiterLRUBound(t *testing.T) {
	l := newRateLimiter(1, 1, 2)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l.now = clock.now

	l.allow("a") // spends a's only token
	l.allow("b")
	l.allow("c") // evicts a, the coldest
	if got := l.clients(); got != 2 {
		t.Fatalf("clients after churn = %d; want the bound 2", got)
	}
	// a's bucket was evicted, so a returns with a fresh (full) bucket even
	// though no time passed (displacing b, now the coldest); c stays
	// tracked and its empty bucket persists.
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("evicted key must return with a fresh bucket")
	}
	if ok, _ := l.allow("c"); ok {
		t.Fatal("c was never evicted; its empty bucket must persist")
	}

	// Hostile churn: ten thousand one-shot keys never grow the table.
	for i := 0; i < 10000; i++ {
		l.allow("churn-" + strconv.Itoa(i))
	}
	if got := l.clients(); got != 2 {
		t.Fatalf("clients after hostile churn = %d; want the bound 2", got)
	}
}

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/breakeven", nil)
	r.RemoteAddr = "203.0.113.9:4711"
	key, kind := clientKey(r)
	if key != "203.0.113.9" || kind != keyKindIP {
		t.Errorf("clientKey = (%q, %q); want (203.0.113.9, ip)", key, kind)
	}

	r.Header.Set("X-API-Key", "tenant-42")
	key, kind = clientKey(r)
	if key != "tenant-42" || kind != keyKindAPIKey {
		t.Errorf("clientKey with API key = (%q, %q); want (tenant-42, api_key)", key, kind)
	}

	// Oversized keys are truncated so the key table cannot store megabytes.
	r.Header.Set("X-API-Key", strings.Repeat("k", 4096))
	key, _ = clientKey(r)
	if len(key) != maxClientKeyBytes {
		t.Errorf("oversized API key length = %d; want truncated to %d", len(key), maxClientKeyBytes)
	}

	// A RemoteAddr without a port still yields a usable key.
	r.Header.Del("X-API-Key")
	r.RemoteAddr = "203.0.113.9"
	if key, _ = clientKey(r); key != "203.0.113.9" {
		t.Errorf("portless RemoteAddr key = %q; want 203.0.113.9", key)
	}
}

// TestRateLimitedEndToEnd drives the full handler stack: a 1 rps / burst 2
// client sees its third immediate request refused with the whole 429
// contract, separate API keys get separate buckets, and the refusal lands
// in memsd_http_rate_limited_total{reason} and /statsz.
func TestRateLimitedEndToEnd(t *testing.T) {
	svc, srv := newTestServer(t, Config{RateLimit: 1, RateBurst: 2})
	body := `{"rate":"1024 kbps"}`

	for i := 0; i < 2; i++ {
		if status, out := post(t, srv, "/v1/breakeven", body); status != http.StatusOK {
			t.Fatalf("burst request %d status = %d, body %s", i, status, out)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/breakeven", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit status = %d; want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q; want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}
	var refusal struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&refusal); err != nil {
		t.Fatalf("decode refusal body: %v", err)
	}
	if !strings.Contains(refusal.Error, "rate limit") || refusal.RetryAfterSeconds != secs {
		t.Fatalf("refusal body = %+v; want a rate-limit error mirroring Retry-After %d", refusal, secs)
	}

	// A different client (distinct API key) has its own untouched bucket.
	req, err := http.NewRequest("POST", srv.URL+"/v1/breakeven", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", "other-tenant")
	keyResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	keyResp.Body.Close()
	if keyResp.StatusCode != http.StatusOK {
		t.Fatalf("fresh API key status = %d; want 200 (per-key buckets)", keyResp.StatusCode)
	}

	// healthz and the other non-/v1 surfaces are never rate limited.
	for i := 0; i < 5; i++ {
		hr, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("healthz under client over-limit = %d; want 200", hr.StatusCode)
		}
	}

	if got := svc.met.rateLimited.With(keyKindIP).Value(); got != 1 {
		t.Errorf("rate_limited{reason=ip} = %d; want 1", got)
	}
	st := svc.Stats()
	if st.RateLimited != 1 {
		t.Errorf("statsz rate_limited = %d; want 1", st.RateLimited)
	}
	if st.RateLimitClients != 2 {
		t.Errorf("statsz rate_limit_clients = %d; want 2 (one IP, one API key)", st.RateLimitClients)
	}
	got := scrape(t, srv)
	mustContainLine(t, got, `memsd_http_rate_limited_total{reason="ip"} 1`)
	mustContainLine(t, got, `memsd_http_rate_limited_total{reason="api_key"} 0`)
}
