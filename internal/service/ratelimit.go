package service

// This file is the per-client rate-limiting layer: a token bucket per
// client key (the X-API-Key header when present, the client IP otherwise),
// held in an LRU-bounded table so hostile key churn recycles table entries
// instead of growing memory. Refused requests get a 429 whose Retry-After
// is the exact time until the bucket next holds a whole token.

import (
	"container/list"
	"net"
	"net/http"
	"sync"
	"time"
)

// rate-limiter defaults shared by Config resolution and cmd/memsd flags.
const (
	// DefaultRateLimitClients bounds the limiter key table when
	// Config.RateLimitClients is zero.
	DefaultRateLimitClients = 4096
	// maxClientKeyBytes caps the accepted X-API-Key length; longer keys are
	// truncated before use so a hostile client cannot store megabytes in
	// the key table.
	maxClientKeyBytes = 128
)

// limiterKeyKind labels where a client key came from, and is the reason
// label of memsd_http_rate_limited_total.
const (
	keyKindIP     = "ip"
	keyKindAPIKey = "api_key"
)

// rateLimiter is a table of per-client token buckets. A nil *rateLimiter
// allows everything (the disabled state).
type rateLimiter struct {
	// rate is the sustained allowance in tokens (requests) per second.
	rate float64
	// burst is the bucket capacity: the largest instantaneous batch.
	burst float64
	// maxClients bounds the table; the least recently used key is evicted.
	maxClients int
	// now is the clock, swappable in tests.
	now func() time.Time

	mu      sync.Mutex
	byKey   map[string]*list.Element
	recency *list.List // front = most recently used
}

// clientBucket is one client's token bucket.
type clientBucket struct {
	key    string
	tokens float64
	last   time.Time
}

// newRateLimiter builds the limiter, or nil when ratePerSec is zero
// (rate limiting disabled). A zero burst defaults to the integer ceiling of
// the rate (at least one), a zero maxClients to DefaultRateLimitClients.
func newRateLimiter(ratePerSec float64, burst, maxClients int) *rateLimiter {
	if ratePerSec <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = int(ratePerSec)
		if float64(burst) < ratePerSec {
			burst++
		}
		if burst < 1 {
			burst = 1
		}
	}
	if maxClients <= 0 {
		maxClients = DefaultRateLimitClients
	}
	return &rateLimiter{
		rate:       ratePerSec,
		burst:      float64(burst),
		maxClients: maxClients,
		now:        time.Now,
		byKey:      make(map[string]*list.Element, maxClients),
		recency:    list.New(),
	}
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports the time until a whole token accrues, for the Retry-After hint.
func (l *rateLimiter) allow(key string) (ok bool, wait time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	var b *clientBucket
	if el, hit := l.byKey[key]; hit {
		l.recency.MoveToFront(el)
		b = el.Value.(*clientBucket)
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	} else {
		// A fresh key starts with a full bucket; evict the coldest entry
		// first so the table never exceeds its bound.
		if l.recency.Len() >= l.maxClients {
			oldest := l.recency.Back()
			l.recency.Remove(oldest)
			delete(l.byKey, oldest.Value.(*clientBucket).key)
		}
		b = &clientBucket{key: key, tokens: l.burst, last: now}
		l.byKey[key] = l.recency.PushFront(b)
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / l.rate * float64(time.Second))
}

// clients returns the current key-table occupancy.
func (l *rateLimiter) clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recency.Len()
}

// clientKey identifies the client of a request: the X-API-Key header when
// present (truncated to maxClientKeyBytes), otherwise the host half of the
// remote address. The kind is the rate-limit metric's reason label.
func clientKey(r *http.Request) (key, kind string) {
	if k := r.Header.Get("X-API-Key"); k != "" {
		if len(k) > maxClientKeyBytes {
			k = k[:maxClientKeyBytes]
		}
		return k, keyKindAPIKey
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		// No port (or a bare value a proxy filled in): limit on the whole
		// string rather than not at all.
		host = r.RemoteAddr
	}
	return host, keyKindIP
}

// rateLimited wraps one /v1 endpoint handler with the per-client limiter.
// Refusals get a 429 with the exact token-accrual wait as Retry-After and
// count into memsd_http_rate_limited_total{reason}.
func (s *Service) rateLimited(h http.Handler) http.Handler {
	if s.limiter == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key, kind := clientKey(r)
		ok, wait := s.limiter.allow(key)
		if !ok {
			s.met.rateLimited.With(kind).Inc()
			writeRetryAfter(w, retryAfterSeconds(wait),
				"service: client rate limit exceeded, retry later")
			return
		}
		h.ServeHTTP(w, r)
	})
}
