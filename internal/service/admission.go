package service

// This file is the admission-control layer of the service: a bounded
// in-flight semaphore with a short bounded wait queue in front of every
// /v1/* endpoint. Work beyond the in-flight bound queues briefly; work
// beyond the queue bound (or whose queue wait expires) is shed with a 429
// and a computed Retry-After, so an overloaded daemon degrades by refusing
// cheaply instead of accepting unboundedly and timing everything out.
//
// The controller is deliberately dumb and allocation-free on the admit
// path: a buffered channel is the semaphore, an atomic counter bounds the
// queue, and the only time it reads is the clock already paid for by the
// per-request latency measurement.

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"time"

	"memstream/internal/metrics"
)

// admissionDefaults centralises the flag/config defaults cmd/memsd and the
// tests share.
const (
	// DefaultQueueWait bounds how long an admitted-to-queue request waits
	// for capacity when Config.QueueWait is zero.
	DefaultQueueWait = time.Second
	// minRetryAfterSeconds and maxRetryAfterSeconds clamp the computed
	// Retry-After so clients always get a sane, parseable hint.
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 30
)

// admission is the bounded in-flight + bounded queue controller. A nil
// *admission admits everything (the disabled state).
type admission struct {
	// sem has one slot per admitted in-flight request.
	sem chan struct{}
	// queueCap bounds how many requests may wait for a slot.
	queueCap int
	// maxWait bounds how long one request may wait in the queue.
	maxWait time.Duration
	// depth mirrors the live queue occupancy into the registry.
	depth *metrics.Gauge
}

// newAdmission builds the controller, or nil when maxInFlight is zero
// (admission control disabled).
func newAdmission(maxInFlight, maxQueue int, maxWait time.Duration, depth *metrics.Gauge) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if maxWait <= 0 {
		maxWait = DefaultQueueWait
	}
	return &admission{
		sem:      make(chan struct{}, maxInFlight),
		queueCap: maxQueue,
		maxWait:  maxWait,
		depth:    depth,
	}
}

// admitErr is why a request was not admitted.
type admitErr int

const (
	admitOK admitErr = iota
	// admitQueueFull: the queue was at capacity on arrival.
	admitQueueFull
	// admitWaitExpired: the request queued but capacity never freed within
	// the wait bound.
	admitWaitExpired
)

// acquire admits one request, blocking in the bounded queue when the
// in-flight bound is reached. On admitOK the caller must call release
// exactly once. A context error (client gone, deadline past) is returned
// as-is so it keeps its transport status code.
func (a *admission) acquire(ctx context.Context) (admitErr, error) {
	if a == nil {
		return admitOK, nil
	}
	select {
	case a.sem <- struct{}{}:
		return admitOK, nil
	default:
	}
	// The fast path missed: try to take a queue slot. queued() is the only
	// coordination point, so hostile floods cost one atomic add each.
	if !a.enqueue() {
		return admitQueueFull, nil
	}
	defer a.dequeue()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		return admitOK, nil
	case <-timer.C:
		return admitWaitExpired, nil
	case <-ctx.Done():
		return admitOK, ctx.Err()
	}
}

// release frees one in-flight slot.
func (a *admission) release() {
	if a == nil {
		return
	}
	<-a.sem
}

// enqueue claims a queue slot, reporting false at capacity.
func (a *admission) enqueue() bool {
	if a.queueCap == 0 {
		return false
	}
	// The gauge doubles as the occupancy counter: Add returns nothing, so
	// read-modify under the registry gauge's CAS loop via Inc, then check.
	// Over-claim is corrected immediately, so the bound holds exactly from
	// the shedding side: at most queueCap requests ever wait.
	a.depth.Inc()
	if int(a.depth.Value()) > a.queueCap {
		a.depth.Dec()
		return false
	}
	return true
}

// dequeue returns a queue slot.
func (a *admission) dequeue() { a.depth.Dec() }

// retryAfterSeconds computes the Retry-After hint for a shed or rate-limited
// request: at least wait (the known time until the next opportunity), floored
// at one second and capped so a transient spike never tells clients to go
// away for minutes.
func retryAfterSeconds(wait time.Duration) int {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < minRetryAfterSeconds {
		return minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return secs
}

// admissionRetryAfter estimates how long a shed client should back off: the
// time for the whole standing queue (plus the client itself) to drain at the
// endpoint's observed median latency. Before any latency observation the
// estimate degrades to the queue wait bound.
func (s *Service) admissionRetryAfter(endpoint string) int {
	est := s.met.latency.With(endpoint).Quantile(0.5)
	if math.IsNaN(est) || est <= 0 {
		return retryAfterSeconds(s.admit.maxWait)
	}
	depth := s.met.queueDepth.Value()
	return retryAfterSeconds(time.Duration((depth + 1) * est * float64(time.Second)))
}

// writeRetryAfter writes the 429 refusal: Retry-After header plus the
// strict-JSON error body carrying the same hint.
func writeRetryAfter(w http.ResponseWriter, seconds int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
	writeJSON(w, http.StatusTooManyRequests, errorBody{Error: msg, RetryAfterSeconds: seconds})
}

// admitted wraps one /v1 endpoint handler with the admission controller.
// Shed requests (queue full, queue wait expired) get a 429 with Retry-After
// and count into memsd_http_requests_shed_total; a request whose own context
// died while queued keeps its transport status instead.
func (s *Service) admitted(endpoint string, h http.Handler) http.Handler {
	if s.admit == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		verdict, err := s.admit.acquire(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		if verdict != admitOK {
			s.met.shed.Inc()
			writeRetryAfter(w, s.admissionRetryAfter(endpoint),
				"service: overloaded: in-flight and queue bounds reached, retry later")
			return
		}
		defer s.admit.release()
		h.ServeHTTP(w, r)
	})
}
