package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"memstream/internal/core"
	"memstream/internal/device"
	"memstream/internal/engine"
	"memstream/internal/multistream"
	"memstream/internal/units"
	"memstream/internal/workload"
)

// ValidationError marks a request the service rejected before computing
// anything; the HTTP layer maps it to a 400 response.
type ValidationError struct {
	// Msg describes what was wrong with the request.
	Msg string
}

// Error implements the error interface.
func (e *ValidationError) Error() string { return "service: invalid request: " + e.Msg }

// invalidf builds a ValidationError.
func invalidf(format string, args ...any) error {
	return &ValidationError{Msg: fmt.Sprintf(format, args...)}
}

// Quantity is a physical quantity in a request body. It accepts either a
// JSON string in the unit grammar of internal/units ("1024 kbps", "64 KiB",
// "7 years") or a bare JSON number, interpreted per the parsers' bare-number
// conventions: bit/s for rates, bytes for sizes, seconds for durations.
type Quantity string

// UnmarshalJSON accepts a JSON string or number.
func (q *Quantity) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		*q = Quantity(s)
		return nil
	}
	var n json.Number
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("quantity must be a string or a number")
	}
	*q = Quantity(n.String())
	return nil
}

// rate parses the quantity as a bit rate and requires it positive and finite.
func (q Quantity) rate(field string) (units.BitRate, error) {
	if q == "" {
		return 0, invalidf("%s is required", field)
	}
	r, err := units.ParseBitRate(string(q))
	if err != nil {
		return 0, invalidf("%s: %v", field, err)
	}
	if !r.Positive() || math.IsInf(r.BitsPerSecond(), 0) {
		return 0, invalidf("%s must be a positive finite rate, got %q", field, q)
	}
	return r, nil
}

// size parses the quantity as a data size and requires it positive and finite.
func (q Quantity) size(field string) (units.Size, error) {
	if q == "" {
		return 0, invalidf("%s is required", field)
	}
	s, err := units.ParseSize(string(q))
	if err != nil {
		return 0, invalidf("%s: %v", field, err)
	}
	if !s.Positive() || math.IsInf(s.Bits(), 0) {
		return 0, invalidf("%s must be a positive finite size, got %q", field, q)
	}
	return s, nil
}

// duration parses the quantity as a duration and requires it non-negative
// and finite. Empty quantities return the fallback.
func (q Quantity) duration(field string, fallback units.Duration) (units.Duration, error) {
	if q == "" {
		return fallback, nil
	}
	d, err := units.ParseDuration(string(q))
	if err != nil {
		return 0, invalidf("%s: %v", field, err)
	}
	if d.Seconds() < 0 || math.IsInf(d.Seconds(), 0) || math.IsNaN(d.Seconds()) {
		return 0, invalidf("%s must be a non-negative finite duration, got %q", field, q)
	}
	return d, nil
}

// DeviceSpec selects and optionally tweaks the storage device of a request.
type DeviceSpec struct {
	// Name picks the base configuration: "default"/"mems" (or empty) for the
	// Table I device, "improved" for the Fig. 3c durability scenario, and —
	// on simulate requests only — "disk" for the 1.8-inch disk baseline.
	Name string `json:"name,omitempty"`
	// ProbeWriteCycles overrides the probe write-cycle rating when positive
	// (MEMS devices only).
	ProbeWriteCycles float64 `json:"probe_write_cycles,omitempty"`
	// SpringDutyCycles overrides the spring duty-cycle rating when positive
	// (MEMS devices only).
	SpringDutyCycles float64 `json:"spring_duty_cycles,omitempty"`
}

// resolve returns the fully specified MEMS device the spec describes, for
// the endpoints backed by the analytical MEMS models.
func (d DeviceSpec) resolve() (device.MEMS, error) {
	var dev device.MEMS
	switch d.Name {
	case "", "default", "mems":
		dev = device.DefaultMEMS()
	case "improved":
		dev = device.ImprovedMEMS()
	case "disk":
		return device.MEMS{}, invalidf("the \"disk\" backend is only supported by simulate requests")
	default:
		return device.MEMS{}, invalidf("unknown device %q (want \"mems\", \"default\" or \"improved\")", d.Name)
	}
	if d.ProbeWriteCycles < 0 || d.SpringDutyCycles < 0 ||
		math.IsNaN(d.ProbeWriteCycles) || math.IsNaN(d.SpringDutyCycles) ||
		math.IsInf(d.ProbeWriteCycles, 0) || math.IsInf(d.SpringDutyCycles, 0) {
		return device.MEMS{}, invalidf("device durability overrides must be positive and finite")
	}
	probes, springs := dev.ProbeWriteCycles, dev.SpringDutyCycles
	if d.ProbeWriteCycles > 0 {
		probes = d.ProbeWriteCycles
	}
	if d.SpringDutyCycles > 0 {
		springs = d.SpringDutyCycles
	}
	return dev.WithDurability(probes, springs), nil
}

// simDevice is a resolved simulate-request device: either a MEMS device (the
// analytical wear projections stay available) or the disk baseline.
type simDevice struct {
	// Kind is the canonical backend label fingerprinted into the cache key:
	// "mems" or "disk".
	Kind string
	// MEMS is the device for Kind "mems" (zero otherwise).
	MEMS device.MEMS
	// Disk is the drive for Kind "disk" (zero otherwise).
	Disk device.Disk
}

// resolveSim resolves the spec for a simulate request, where the disk
// baseline is a valid backend alongside the MEMS devices.
func (d DeviceSpec) resolveSim() (simDevice, error) {
	if d.Name == "disk" {
		if d.ProbeWriteCycles != 0 || d.SpringDutyCycles != 0 {
			return simDevice{}, invalidf("durability overrides do not apply to the \"disk\" backend")
		}
		return simDevice{Kind: "disk", Disk: device.Default18InchDisk()}, nil
	}
	dev, err := d.resolve()
	if err != nil {
		return simDevice{}, err
	}
	return simDevice{Kind: "mems", MEMS: dev}, nil
}

// GoalSpec is the design goal (E, C, L) of a request.
type GoalSpec struct {
	// EnergySaving is E, the required relative energy saving, in [0, 1).
	EnergySaving float64 `json:"energy_saving"`
	// CapacityUtilisation is C, the required capacity utilisation, in [0, 1).
	CapacityUtilisation float64 `json:"capacity_utilisation"`
	// Lifetime is L, the required device lifetime (e.g. "7 years").
	Lifetime Quantity `json:"lifetime"`
}

// resolve parses and validates the goal.
func (g GoalSpec) resolve() (core.Goal, error) {
	// NaN slips through every range comparison (all compare false), so it
	// must be rejected explicitly before it can reach a fingerprint.
	if math.IsNaN(g.EnergySaving) || math.IsNaN(g.CapacityUtilisation) {
		return core.Goal{}, invalidf("goal fields must not be NaN")
	}
	lt, err := g.Lifetime.duration("goal.lifetime", 0)
	if err != nil {
		return core.Goal{}, err
	}
	goal := core.Goal{
		EnergySaving:        g.EnergySaving,
		CapacityUtilisation: g.CapacityUtilisation,
		Lifetime:            lt,
	}
	if err := goal.Validate(); err != nil {
		return core.Goal{}, invalidf("goal: %v", err)
	}
	return goal, nil
}

// DimensionRequest asks for the buffer required to meet a goal at one rate.
type DimensionRequest struct {
	// Device selects the MEMS device.
	Device DeviceSpec `json:"device,omitzero"`
	// Rate is the streaming bit rate.
	Rate Quantity `json:"rate"`
	// Goal is the design goal to dimension for.
	Goal GoalSpec `json:"goal"`
}

// RequirementResult is one constraint's buffer requirement in a response.
type RequirementResult struct {
	// Constraint is the paper's label (E, C, Lsp, Lpb).
	Constraint string `json:"constraint"`
	// Feasible reports whether any buffer satisfies the constraint.
	Feasible bool `json:"feasible"`
	// BufferBits is the minimum satisfying buffer in bits (0 if infeasible).
	BufferBits float64 `json:"buffer_bits"`
	// Buffer is the human-readable form of BufferBits.
	Buffer string `json:"buffer"`
	// Reason explains infeasibility (empty when feasible).
	Reason string `json:"reason,omitempty"`
}

// DimensionResponse is the answer to a DimensionRequest.
type DimensionResponse struct {
	// Rate echoes the parsed streaming rate.
	Rate string `json:"rate"`
	// RateBitsPerSecond is the parsed rate in bit/s.
	RateBitsPerSecond float64 `json:"rate_bps"`
	// Feasible reports whether every constraint can be met.
	Feasible bool `json:"feasible"`
	// Dominant is the constraint dictating the buffer.
	Dominant string `json:"dominant"`
	// BufferBits is the required buffer in bits.
	BufferBits float64 `json:"buffer_bits"`
	// Buffer is the human-readable required buffer.
	Buffer string `json:"buffer"`
	// BreakEvenBits is the energy break-even buffer in bits.
	BreakEvenBits float64 `json:"break_even_bits"`
	// BreakEven is the human-readable break-even buffer.
	BreakEven string `json:"break_even"`
	// MinimumBufferBits is the smallest buffer that closes a refill cycle.
	MinimumBufferBits float64 `json:"minimum_buffer_bits"`
	// Requirements holds the per-constraint requirements in E, C, Lsp, Lpb
	// order.
	Requirements []RequirementResult `json:"requirements"`
}

// SweepRequest asks for a dimensioning sweep over log-spaced rates.
type SweepRequest struct {
	// Device selects the MEMS device.
	Device DeviceSpec `json:"device,omitzero"`
	// Goal is the design goal swept.
	Goal GoalSpec `json:"goal"`
	// MinRate and MaxRate bound the swept rates.
	MinRate Quantity `json:"min_rate"`
	MaxRate Quantity `json:"max_rate"`
	// Points is the number of log-spaced rates (2..MaxSweepPoints).
	Points int `json:"points"`
	// Workers bounds the per-request worker pool; 0 uses the service
	// default. Workers never affect the result, only its latency, so they
	// are excluded from the cache fingerprint.
	Workers int `json:"workers,omitempty"`
}

// MaxSweepPoints bounds the rates one sweep request may ask for.
const MaxSweepPoints = 4096

// SweepPointResult is one rate's dimensioning within a sweep response.
type SweepPointResult struct {
	// RateBitsPerSecond is the sampled rate in bit/s.
	RateBitsPerSecond float64 `json:"rate_bps"`
	// Rate is its human-readable form.
	Rate string `json:"rate"`
	// Feasible reports whether the goal can be met at this rate.
	Feasible bool `json:"feasible"`
	// Dominant is the dictating constraint at this rate.
	Dominant string `json:"dominant"`
	// BufferBits is the required buffer in bits.
	BufferBits float64 `json:"buffer_bits"`
	// Buffer is its human-readable form.
	Buffer string `json:"buffer"`
	// BreakEvenBits is the break-even buffer in bits.
	BreakEvenBits float64 `json:"break_even_bits"`
}

// RegimeResult is one dominance regime of a sweep response.
type RegimeResult struct {
	// MinRate and MaxRate bound the regime (human-readable).
	MinRate string `json:"min_rate"`
	MaxRate string `json:"max_rate"`
	// Label is the paper-style annotation (E, C, Lsp, Lpb or X).
	Label string `json:"label"`
	// Points is the number of sampled rates in the regime.
	Points int `json:"points"`
}

// SweepResponse is the answer to a SweepRequest.
type SweepResponse struct {
	// Goal echoes the goal in the paper's figure-label format.
	Goal string `json:"goal"`
	// Points holds the per-rate dimensionings in ascending rate order.
	Points []SweepPointResult `json:"points"`
	// Regimes segments the sweep by dominant constraint.
	Regimes []RegimeResult `json:"regimes"`
	// FeasibilityLimit is the lowest infeasible rate (empty when the goal
	// holds across the whole sweep).
	FeasibilityLimit string `json:"feasibility_limit,omitempty"`
	// DominanceShare maps each constraint label to the fraction of feasible
	// rates it dominates.
	DominanceShare map[string]float64 `json:"dominance_share"`
}

// VideoSpec tunes the MPEG-like video workload of a simulate request with
// "stream": "video". Omitted fields take the library defaults (25 fps,
// 12-frame GOP, anchor distance 3, 5:3:1 weights, 20 % jitter); the resolved
// values — not the spelling — enter the cache fingerprint, so an explicit
// default and an omitted field share an entry.
type VideoSpec struct {
	// FrameRate is the display rate in frames per second.
	FrameRate float64 `json:"frame_rate,omitempty"`
	// GOPLength is the number of frames per group of pictures (N).
	GOPLength int `json:"gop_length,omitempty"`
	// IPDistance is the distance between anchor frames (M).
	IPDistance int `json:"ip_distance,omitempty"`
	// WeightI, WeightP and WeightB are the relative frame sizes per class.
	WeightI float64 `json:"weight_i,omitempty"`
	WeightP float64 `json:"weight_p,omitempty"`
	WeightB float64 `json:"weight_b,omitempty"`
	// Jitter is the relative frame-size noise in [0, 1); a pointer so an
	// explicit 0 (no jitter) is distinct from the omitted default.
	Jitter *float64 `json:"jitter,omitempty"`
}

// resolve merges the spec with the library defaults into a canonical
// workload spec at the given rate.
func (v *VideoSpec) resolve(rate units.BitRate) (workload.StreamSpec, error) {
	spec := workload.VideoSpec(rate, 0)
	if v == nil {
		return spec, nil
	}
	for name, f := range map[string]float64{
		"frame_rate": v.FrameRate, "weight_i": v.WeightI, "weight_p": v.WeightP, "weight_b": v.WeightB,
	} {
		if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return workload.StreamSpec{}, invalidf("video.%s must be a non-negative finite number, got %v", name, f)
		}
	}
	if v.GOPLength < 0 || v.IPDistance < 0 {
		return workload.StreamSpec{}, invalidf("video.gop_length and video.ip_distance must be non-negative")
	}
	// The generated trace holds duration * frame_rate frames, so an
	// unbounded frame rate would let one request allocate arbitrary memory.
	if v.FrameRate > MaxVideoFrameRate {
		return workload.StreamSpec{}, invalidf("video.frame_rate must not exceed %d fps, got %v", MaxVideoFrameRate, v.FrameRate)
	}
	if v.GOPLength > MaxVideoGOPLength {
		return workload.StreamSpec{}, invalidf("video.gop_length must not exceed %d, got %d", MaxVideoGOPLength, v.GOPLength)
	}
	if v.FrameRate > 0 {
		spec.FrameRate = v.FrameRate
	}
	if v.GOPLength > 0 {
		spec.GOPLength = v.GOPLength
	}
	if v.IPDistance > 0 {
		spec.IPDistance = v.IPDistance
	}
	if v.WeightI > 0 {
		spec.WeightI = v.WeightI
	}
	if v.WeightP > 0 {
		spec.WeightP = v.WeightP
	}
	if v.WeightB > 0 {
		spec.WeightB = v.WeightB
	}
	if v.Jitter != nil {
		j := *v.Jitter
		if math.IsNaN(j) || j < 0 || j >= 1 {
			return workload.StreamSpec{}, invalidf("video.jitter must be in [0, 1), got %v", j)
		}
		spec.Jitter = j
	}
	if err := spec.Validate(); err != nil {
		return workload.StreamSpec{}, invalidf("video: %v", err)
	}
	return spec, nil
}

// videoKey is the canonical video fingerprint payload: the fully resolved
// parameters, so equivalent spellings share a cache entry.
type videoKey struct {
	FrameRate  float64
	GOPLength  int
	IPDistance int
	WeightI    float64
	WeightP    float64
	WeightB    float64
	Jitter     float64
}

// videoKeyOf extracts the fingerprinted video parameters of a resolved spec.
func videoKeyOf(spec workload.StreamSpec) videoKey {
	return videoKey{
		FrameRate:  spec.FrameRate,
		GOPLength:  spec.GOPLength,
		IPDistance: spec.IPDistance,
		WeightI:    spec.WeightI,
		WeightP:    spec.WeightP,
		WeightB:    spec.WeightB,
		Jitter:     spec.Jitter,
	}
}

// TraceFrameSpec is one frame of an inline trace ("stream": "trace").
type TraceFrameSpec struct {
	// Timestamp is the frame's display time (unit string or seconds).
	Timestamp Quantity `json:"timestamp"`
	// Size is the encoded frame size (unit string or bytes).
	Size Quantity `json:"size"`
	// Class is the coding class: "I", "P" (default) or "B".
	Class string `json:"class,omitempty"`
}

// MaxTraceFrames bounds the frames one inline trace may carry (the request
// body bound keeps realistic traces well below it).
const MaxTraceFrames = 65536

// MaxVideoFrameRate bounds the frame rate of a generated video workload:
// together with MaxSimSeconds and workload.MaxTraceHorizon it bounds the
// memory one simulate request can demand. 1000 fps covers every real
// display rate with a wide margin.
const MaxVideoFrameRate = 1000

// MaxVideoGOPLength bounds the GOP length of a generated video workload.
const MaxVideoGOPLength = 4096

// traceFrameKey is one frame of the canonical trace fingerprint payload:
// normalized timestamp in seconds, size in bits and the class letter, so
// unit spellings and constant timestamp offsets share a cache entry.
type traceFrameKey struct {
	T float64
	S float64
	C string
}

// resolveFrames parses and normalizes an inline trace, returning the frames
// and their canonical fingerprint form.
func resolveFrames(specs []TraceFrameSpec) ([]workload.Frame, []traceFrameKey, error) {
	if len(specs) == 0 {
		return nil, nil, invalidf(`frames is required when stream is "trace"`)
	}
	if len(specs) > MaxTraceFrames {
		return nil, nil, invalidf("at most %d frames per trace, got %d", MaxTraceFrames, len(specs))
	}
	frames := make([]workload.Frame, len(specs))
	for i, f := range specs {
		if f.Timestamp == "" {
			return nil, nil, invalidf("frames[%d].timestamp is required", i)
		}
		ts, err := f.Timestamp.duration(fmt.Sprintf("frames[%d].timestamp", i), 0)
		if err != nil {
			return nil, nil, err
		}
		size, err := f.Size.size(fmt.Sprintf("frames[%d].size", i))
		if err != nil {
			return nil, nil, err
		}
		class := workload.FrameP
		if f.Class != "" {
			class, err = workload.ParseFrameClass(f.Class)
			if err != nil {
				return nil, nil, invalidf("frames[%d]: %v", i, err)
			}
		}
		frames[i] = workload.Frame{Timestamp: ts, Class: class, Size: size}
	}
	frames, err := workload.NormalizeFrames(frames)
	if err != nil {
		return nil, nil, invalidf("%v", err)
	}
	keys := make([]traceFrameKey, len(frames))
	for i, f := range frames {
		// The offset normalization subtracts timestamps, which leaves
		// sub-nanosecond floating-point noise; quantize the canonical form
		// to nanoseconds so shifted-but-equal traces share a fingerprint.
		keys[i] = traceFrameKey{
			T: math.Round(f.Timestamp.Seconds()/units.Nanosecond.Seconds()) * units.Nanosecond.Seconds(),
			S: f.Size.Bits(),
			C: f.Class.String(),
		}
	}
	return frames, keys, nil
}

// SimulateRequest asks for one or more discrete-event simulation runs.
type SimulateRequest struct {
	// Device selects the simulated device backend: a MEMS device
	// ("default"/"mems"/"improved", with optional durability overrides) or
	// the 1.8-inch disk baseline ("disk").
	Device DeviceSpec `json:"device,omitzero"`
	// Rate is the streaming bit rate. Must be omitted for
	// "stream": "trace", where the rate is derived from the frames (a
	// supplied rate is rejected rather than silently ignored).
	Rate Quantity `json:"rate"`
	// Buffer is the streaming-buffer capacity.
	Buffer Quantity `json:"buffer"`
	// Duration is the simulated streaming time (default "5 min").
	Duration Quantity `json:"duration,omitempty"`
	// Stream picks the stream kind: "cbr" (default), "vbr", "video" or
	// "trace".
	Stream string `json:"stream,omitempty"`
	// Video tunes the "video" stream kind (rejected for other kinds).
	Video *VideoSpec `json:"video,omitempty"`
	// Frames is the inline frame trace of the "trace" stream kind
	// (required there, rejected elsewhere).
	Frames []TraceFrameSpec `json:"frames,omitempty"`
	// BestEffort is the best-effort share of device time (default 0.05;
	// negative is rejected, 0 disables).
	BestEffort *float64 `json:"best_effort,omitempty"`
	// Seed makes the run reproducible (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Replicas runs this many seed-varied copies concurrently (default 1,
	// bounded by MaxSimReplicas).
	Replicas int `json:"replicas,omitempty"`
	// Workers bounds the per-request worker pool; excluded from the cache
	// fingerprint like SweepRequest.Workers.
	Workers int `json:"workers,omitempty"`
}

// MaxSimReplicas bounds the replicas one simulate request may ask for.
const MaxSimReplicas = 256

// MaxSimSeconds bounds the simulated time of one replica (a full day of
// streaming), so a single request cannot demand unbounded compute even when
// the daemon runs without a request deadline.
const MaxSimSeconds = 86400

// SimulateResult is one simulation run's statistics in a response.
type SimulateResult struct {
	// Seed is the seed this replica ran with.
	Seed uint64 `json:"seed"`
	// SimulatedSeconds is the covered streaming time.
	SimulatedSeconds float64 `json:"simulated_seconds"`
	// StreamedBits is the data delivered to the application.
	StreamedBits float64 `json:"streamed_bits"`
	// RefillCycles counts completed seek-refill-shutdown cycles.
	RefillCycles int `json:"refill_cycles"`
	// Underruns counts dry integration steps (a granularity diagnostic).
	Underruns int `json:"underruns"`
	// RebufferEpisodes counts distinct playback stalls (consecutive dry
	// steps collapse into one episode).
	RebufferEpisodes int `json:"rebuffer_episodes"`
	// RebufferSeconds is the total playback time lost to stalls.
	RebufferSeconds float64 `json:"rebuffer_seconds"`
	// StartupDelaySeconds is the modelled start-up latency: positioning
	// plus one initial buffer fill at the media rate.
	StartupDelaySeconds float64 `json:"startup_delay_seconds"`
	// EnergyPerBit is the observed total per-bit energy (human-readable).
	EnergyPerBit string `json:"energy_per_bit"`
	// EnergyPerBitJoules is the per-bit energy in J/bit.
	EnergyPerBitJoules float64 `json:"energy_per_bit_j"`
	// DutyCycle is the fraction of time the device was active.
	DutyCycle float64 `json:"duty_cycle"`
	// SpringsLifetimeYears projects the observed wake-up frequency onto the
	// springs rating under the default calendar; omitted when the run saw
	// no wake-ups (an unbounded projection).
	SpringsLifetimeYears *float64 `json:"springs_lifetime_years,omitempty"`
	// ProbesLifetimeYears projects the observed write volume onto the
	// probes rating under the default calendar; omitted when the run wrote
	// nothing (an unbounded projection).
	ProbesLifetimeYears *float64 `json:"probes_lifetime_years,omitempty"`
}

// SimulateResponse is the answer to a SimulateRequest.
type SimulateResponse struct {
	// Rate echoes the parsed streaming rate.
	Rate string `json:"rate"`
	// Buffer echoes the parsed buffer capacity.
	Buffer string `json:"buffer"`
	// Runs holds one entry per replica, in seed order.
	Runs []SimulateResult `json:"runs"`
}

// BreakEvenRequest asks for the break-even buffers at one rate.
type BreakEvenRequest struct {
	// Device selects the MEMS device.
	Device DeviceSpec `json:"device,omitzero"`
	// Rate is the streaming bit rate.
	Rate Quantity `json:"rate"`
}

// BreakEvenResponse is the answer to a BreakEvenRequest: the Section III-A.1
// break-even streaming buffers of the MEMS device and the 1.8-inch disk
// baseline, and their ratio.
type BreakEvenResponse struct {
	// Rate echoes the parsed streaming rate.
	Rate string `json:"rate"`
	// MEMSBits and DiskBits are the break-even buffers in bits.
	MEMSBits float64 `json:"mems_bits"`
	DiskBits float64 `json:"disk_bits"`
	// MEMS and Disk are their human-readable forms.
	MEMS string `json:"mems"`
	Disk string `json:"disk"`
	// DiskOverMEMS is the disk-to-MEMS buffer ratio.
	DiskOverMEMS float64 `json:"disk_over_mems"`
}

// MultiStreamSpec describes one stream of a shared-device request.
type MultiStreamSpec struct {
	// Name labels the stream in results.
	Name string `json:"name"`
	// Rate is the stream's consumption/production rate.
	Rate Quantity `json:"rate"`
	// WriteFraction is the written share of this stream's traffic.
	WriteFraction float64 `json:"write_fraction"`
}

// MultiStreamRequest asks for the shared-device dimensioning of a stream mix.
type MultiStreamRequest struct {
	// Device selects the MEMS device.
	Device DeviceSpec `json:"device,omitzero"`
	// Goal is the system-wide design goal.
	Goal GoalSpec `json:"goal"`
	// Streams are the concurrent streams sharing the device.
	Streams []MultiStreamSpec `json:"streams"`
	// CountInterStreamSeeks charges inter-stream repositioning against the
	// springs rating (conservative).
	CountInterStreamSeeks bool `json:"count_inter_stream_seeks,omitempty"`
}

// MaxMultiStreams bounds the streams one multistream request may carry.
const MaxMultiStreams = 64

// MultiStreamBuffer is one stream's dimensioned buffer in a response.
type MultiStreamBuffer struct {
	// Name labels the stream.
	Name string `json:"name"`
	// BufferBits is the dimensioned buffer in bits.
	BufferBits float64 `json:"buffer_bits"`
	// Buffer is its human-readable form.
	Buffer string `json:"buffer"`
}

// MultiStreamResponse is the answer to a MultiStreamRequest.
type MultiStreamResponse struct {
	// Feasible reports whether every constraint can be met.
	Feasible bool `json:"feasible"`
	// Dominant is the constraint demanding the longest super-cycle.
	Dominant string `json:"dominant"`
	// PeriodSeconds is the dimensioned super-cycle period.
	PeriodSeconds float64 `json:"period_seconds"`
	// Period is its human-readable form.
	Period string `json:"period"`
	// Buffers holds one dimensioned buffer per stream (request order).
	Buffers []MultiStreamBuffer `json:"buffers"`
	// TotalBufferBits is the summed buffer in bits.
	TotalBufferBits float64 `json:"total_buffer_bits"`
	// TotalBuffer is its human-readable form.
	TotalBuffer string `json:"total_buffer"`
	// EnergySaving and Utilisation evaluate the plan at the dimensioned
	// period (zero when infeasible).
	EnergySaving float64 `json:"energy_saving"`
	Utilisation  float64 `json:"utilisation"`
	// LifetimeYears is the plan's projected lifetime; omitted when
	// infeasible or when no modelled component wears (unbounded).
	LifetimeYears *float64 `json:"lifetime_years,omitempty"`
	// Reasons explains infeasible constraints by label.
	Reasons map[string]string `json:"reasons,omitempty"`
}

// MultiSimStreamSpec describes one stream of a shared-device simulation
// request ("POST /v1/multisim").
type MultiSimStreamSpec struct {
	// Name labels the stream in results.
	Name string `json:"name"`
	// Stream picks the stream kind: "cbr" (default), "vbr" or "video".
	Stream string `json:"stream,omitempty"`
	// Rate is the stream's nominal bit rate.
	Rate Quantity `json:"rate"`
	// Buffer is the stream's dedicated buffer capacity.
	Buffer Quantity `json:"buffer"`
	// WriteFraction is the written share of this stream's traffic (default
	// 0.4, the Table I mix; 0 for pure playback, 1 for a recording).
	WriteFraction *float64 `json:"write_fraction,omitempty"`
	// Priority is the stream's service class under the "priority" policy:
	// higher-priority streams are refilled first within a wake-up (default 0;
	// the other policies ignore it).
	Priority int `json:"priority,omitempty"`
	// Video tunes the "video" stream kind (rejected for other kinds).
	Video *VideoSpec `json:"video,omitempty"`
}

// MultiSimRequest asks for shared-device simulation runs: several concurrent
// streams on one device under a scheduling policy.
type MultiSimRequest struct {
	// Device selects the simulated backend, as in SimulateRequest.
	Device DeviceSpec `json:"device,omitzero"`
	// Policy selects the service order within a wake-up: "round-robin" (or
	// "rr", the default) services every stream in declaration order, per the
	// paper's cycle model; "most-urgent" (or "edf") refills the buffer
	// closest to starving first; "priority" (or "prio") refills higher
	// stream priorities first, most urgent first within a class.
	Policy string `json:"policy,omitempty"`
	// Streams are the concurrent streams sharing the device.
	Streams []MultiSimStreamSpec `json:"streams"`
	// Duration is the simulated streaming time (default "5 min").
	Duration Quantity `json:"duration,omitempty"`
	// BestEffort is the best-effort share of device time (default 0.05).
	BestEffort *float64 `json:"best_effort,omitempty"`
	// Seed makes the run reproducible (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Replicas runs this many seed-varied copies concurrently (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Workers bounds the per-request worker pool; excluded from the cache
	// fingerprint like SweepRequest.Workers.
	Workers int `json:"workers,omitempty"`
}

// MultiSimStreamResult is one stream's view of a shared-device run.
type MultiSimStreamResult struct {
	// Name labels the stream (request order is preserved).
	Name string `json:"name"`
	// StreamedBits is the data this stream consumed or produced.
	StreamedBits float64 `json:"streamed_bits"`
	// RefillCycles counts this stream's buffer refills.
	RefillCycles int `json:"refill_cycles"`
	// Underruns counts this stream's dry integration steps.
	Underruns int `json:"underruns"`
	// RebufferEpisodes counts this stream's distinct playback stalls.
	RebufferEpisodes int `json:"rebuffer_episodes"`
	// RebufferSeconds is this stream's total stalled playback time.
	RebufferSeconds float64 `json:"rebuffer_seconds"`
	// StartupDelaySeconds is the modelled start-up latency of this stream
	// (the device fills every earlier stream's buffer first).
	StartupDelaySeconds float64 `json:"startup_delay_seconds"`
	// MinBufferLevelBits is the lowest fill level this stream's buffer saw.
	MinBufferLevelBits float64 `json:"min_buffer_level_bits"`
	// EnergyShare is this stream's share of the device energy: its
	// attributed seek/transfer energy plus a proportional share of the
	// shared cycle states.
	EnergyShare float64 `json:"energy_share"`
}

// MultiSimResult is one shared-device run's statistics in a response.
type MultiSimResult struct {
	// Seed is the seed this replica ran with.
	Seed uint64 `json:"seed"`
	// SimulatedSeconds is the covered streaming time.
	SimulatedSeconds float64 `json:"simulated_seconds"`
	// WakeUps counts device super-cycles (one positioning run services every
	// stream).
	WakeUps int `json:"wake_ups"`
	// StreamedBits is the aggregate data streamed across all streams.
	StreamedBits float64 `json:"streamed_bits"`
	// Underruns is the aggregate dry-step count across all streams.
	Underruns int `json:"underruns"`
	// EnergyPerBit is the observed total per-bit energy (human-readable).
	EnergyPerBit string `json:"energy_per_bit"`
	// EnergyPerBitJoules is the per-bit energy in J/bit.
	EnergyPerBitJoules float64 `json:"energy_per_bit_j"`
	// DutyCycle is the fraction of time the device was active.
	DutyCycle float64 `json:"duty_cycle"`
	// SpringsLifetimeYears and ProbesLifetimeYears project the observed wear
	// under the default calendar; omitted for the disk backend and for
	// unbounded projections, as in SimulateResult.
	SpringsLifetimeYears *float64 `json:"springs_lifetime_years,omitempty"`
	ProbesLifetimeYears  *float64 `json:"probes_lifetime_years,omitempty"`
	// Streams holds one entry per stream, in request order.
	Streams []MultiSimStreamResult `json:"streams"`
}

// MultiSimResponse is the answer to a MultiSimRequest.
type MultiSimResponse struct {
	// Policy echoes the canonical scheduling policy.
	Policy string `json:"policy"`
	// Runs holds one entry per replica, in seed order.
	Runs []MultiSimResult `json:"runs"`
}

// resolvePolicy canonicalizes the policy spelling of a multisim request
// through the engine's single alias table.
func resolvePolicy(s string) (engine.Policy, error) {
	p, err := engine.ParsePolicy(s)
	if err != nil {
		return "", invalidf("unknown policy %q (want \"round-robin\"/\"rr\", \"most-urgent\"/\"edf\" or \"priority\"/\"prio\")", s)
	}
	return p, nil
}

// multiSimStream is one resolved stream of a multisim request, carrying both
// the simulator inputs and the canonical fingerprint fields.
type multiSimStream struct {
	name          string
	kind          string
	rate          units.BitRate
	buffer        units.Size
	writeFraction float64
	priority      int
	video         workload.StreamSpec // resolved spec for kind "video"
}

// multiSimStreamKey is one stream of the canonical multisim fingerprint.
type multiSimStreamKey struct {
	Name          string
	Kind          string
	RateBps       float64
	BufferBits    float64
	WriteFraction float64
	Priority      int
	Video         videoKey
}

// resolveMultiSimStreams parses and validates the streams of a multisim
// request, returning the resolved streams and their fingerprint form.
func resolveMultiSimStreams(specs []MultiSimStreamSpec) ([]multiSimStream, []multiSimStreamKey, error) {
	if len(specs) == 0 {
		return nil, nil, invalidf("streams is required")
	}
	if len(specs) > MaxMultiStreams {
		return nil, nil, invalidf("at most %d streams per request, got %d", MaxMultiStreams, len(specs))
	}
	streams := make([]multiSimStream, len(specs))
	keys := make([]multiSimStreamKey, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return nil, nil, invalidf("streams[%d].name is required", i)
		}
		kind := s.Stream
		if kind == "" {
			kind = "cbr"
		}
		switch kind {
		case "cbr", "vbr", "video":
		default:
			return nil, nil, invalidf("streams[%d].stream must be \"cbr\", \"vbr\" or \"video\", got %q", i, s.Stream)
		}
		if s.Video != nil && kind != "video" {
			return nil, nil, invalidf("streams[%d]: the video object only applies to \"stream\": \"video\", not %q", i, kind)
		}
		rate, err := s.Rate.rate(fmt.Sprintf("streams[%d].rate", i))
		if err != nil {
			return nil, nil, err
		}
		buffer, err := s.Buffer.size(fmt.Sprintf("streams[%d].buffer", i))
		if err != nil {
			return nil, nil, err
		}
		write := 0.4
		if s.WriteFraction != nil {
			write = *s.WriteFraction
		}
		if math.IsNaN(write) || write < 0 || write > 1 {
			return nil, nil, invalidf("streams[%d].write_fraction must be in [0, 1], got %v", i, write)
		}
		st := multiSimStream{name: s.Name, kind: kind, rate: rate, buffer: buffer, writeFraction: write, priority: s.Priority}
		key := multiSimStreamKey{
			Name:          s.Name,
			Kind:          kind,
			RateBps:       rate.BitsPerSecond(),
			BufferBits:    buffer.Bits(),
			WriteFraction: write,
			Priority:      s.Priority,
		}
		if kind == "video" {
			st.video, err = s.Video.resolve(rate)
			if err != nil {
				return nil, nil, invalidf("streams[%d]: %v", i, errMessage(err))
			}
			key.Video = videoKeyOf(st.video)
		}
		streams[i] = st
		keys[i] = key
	}
	return streams, keys, nil
}

// errMessage unwraps a ValidationError's message for re-prefixing (other
// errors keep their full text).
func errMessage(err error) string {
	var verr *ValidationError
	if errors.As(err, &verr) {
		return verr.Msg
	}
	return err.Error()
}

// spec builds the workload spec of one resolved stream for one seed; the
// stochastic kinds re-derive their randomness from it.
func (s multiSimStream) spec(seed uint64) workload.StreamSpec {
	var spec workload.StreamSpec
	switch s.kind {
	case "vbr":
		spec = workload.VBRSpec(s.rate, seed)
	case "video":
		spec = s.video
		spec.Seed = seed
	default:
		spec = workload.CBRSpec(s.rate)
	}
	spec.WriteFraction = s.writeFraction
	return spec
}

// resolveStreams converts the request streams into engine stream specs.
func resolveStreams(specs []MultiStreamSpec) ([]multistream.StreamSpec, error) {
	if len(specs) == 0 {
		return nil, invalidf("streams is required")
	}
	if len(specs) > MaxMultiStreams {
		return nil, invalidf("at most %d streams per request, got %d", MaxMultiStreams, len(specs))
	}
	out := make([]multistream.StreamSpec, len(specs))
	for i, s := range specs {
		rate, err := s.Rate.rate(fmt.Sprintf("streams[%d].rate", i))
		if err != nil {
			return nil, err
		}
		if math.IsNaN(s.WriteFraction) {
			return nil, invalidf("streams[%d].write_fraction must not be NaN", i)
		}
		out[i] = multistream.StreamSpec{Name: s.Name, Rate: rate, WriteFraction: s.WriteFraction}
		if err := out[i].Validate(); err != nil {
			return nil, invalidf("streams[%d]: %v", i, err)
		}
	}
	return out, nil
}

// requirementResults converts a core dimensioning into response requirements
// in E, C, Lsp, Lpb order.
func requirementResults(d core.Dimensioning) []RequirementResult {
	out := make([]RequirementResult, 0, core.NumConstraints)
	for _, r := range d.Requirements {
		rr := RequirementResult{
			Constraint: r.Constraint.String(),
			Feasible:   r.Feasible,
			Reason:     r.Reason,
		}
		if r.Feasible && !math.IsInf(r.Buffer.Bits(), 0) {
			rr.BufferBits = r.Buffer.Bits()
			rr.Buffer = r.Buffer.String()
		}
		out = append(out, rr)
	}
	return out
}

// yearsOrNil converts a lifetime to years, or to nil when unbounded — the
// JSON field is omitted rather than conflating "never wears out" with a
// zero lifetime (and infinities would not marshal anyway).
func yearsOrNil(d units.Duration) *float64 {
	if math.IsInf(d.Seconds(), 0) {
		return nil
	}
	y := d.Years()
	return &y
}
