package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseFrames drives the frame-trace text parser with arbitrary input:
// nothing may panic, and any accepted trace must round-trip exactly through
// FormatFrames — the dump/replay cycle memssim's -dump-trace relies on.
func FuzzParseFrames(f *testing.F) {
	f.Add("0 1500 I\n0.04 800 P\n0.08 600 B\n")
	f.Add("# comment\n\n40ms 3.1KiB\n80ms 25000bit I\n")
	f.Add("1.5 2KiB p\n2 4KiB b\n")
	f.Add("0 0\n")
	f.Add("0 1500\n0 1500\n")
	f.Add("bogus line\n")
	f.Add("0 1500 X\n")
	f.Add("1e300y 1500\n2e300y 1500\n")
	f.Add("0 1e309bit\n")
	f.Add("-5 100\n-4 100\n")
	f.Fuzz(func(t *testing.T, data string) {
		frames, err := ParseFrames(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := FormatFrames(&buf, frames); err != nil {
			t.Fatalf("format accepted trace: %v", err)
		}
		again, err := ParseFrames(&buf)
		if err != nil {
			t.Fatalf("formatted trace rejected: %v\n%s", err, buf.String())
		}
		if len(again) != len(frames) {
			t.Fatalf("round-trip changed the frame count: %d -> %d", len(frames), len(again))
		}
		for i := range frames {
			if frames[i].Timestamp != again[i].Timestamp ||
				frames[i].Size != again[i].Size ||
				frames[i].Class != again[i].Class {
				t.Errorf("frame %d changed in the round-trip: %+v -> %+v", i, frames[i], again[i])
			}
		}
		// An accepted trace also builds a demand pattern with sane bounds.
		p, err := NewTracePattern(frames)
		if err != nil {
			t.Fatalf("accepted trace rejected by NewTracePattern: %v", err)
		}
		if p.PeakRate() < p.AverageRate() {
			t.Errorf("peak rate %v below average %v", p.PeakRate(), p.AverageRate())
		}
	})
}
