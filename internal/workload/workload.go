// Package workload generates the streaming and best-effort traffic that
// drives the discrete-event simulator: constant- and variable-bit-rate stream
// patterns, the read/write mix of Table I, and a background best-effort
// request process standing in for operating-system and file-system activity.
//
// All generators are deterministic given a seed, so simulations are exactly
// reproducible.
package workload

import (
	"errors"
	"fmt"
	"math"

	"memstream/internal/units"
)

// Rng is a small, deterministic pseudo-random generator (SplitMix64). It is
// intentionally not cryptographic; it only has to be fast, seedable and
// well-distributed enough for workload generation.
type Rng struct {
	state uint64
}

// NewRng returns a generator seeded with the given value.
func NewRng(seed uint64) *Rng {
	return &Rng{state: seed}
}

// Seed rewinds the generator to the state NewRng(seed) would start from, so
// a reused generator replays exactly the sequence a fresh one would produce.
func (r *Rng) Seed(seed uint64) {
	r.state = seed
}

// Uint64 returns the next 64-bit value.
func (r *Rng) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rng) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Intn returns a uniform integer in [0, n).
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// StreamKind distinguishes constant- and variable-bit-rate streams.
type StreamKind int

// Stream kinds.
const (
	// CBR streams consume exactly the nominal rate at all times.
	CBR StreamKind = iota
	// VBR streams vary around the nominal rate segment by segment, as
	// compressed video does scene by scene.
	VBR
)

// Stream describes one streaming session.
type Stream struct {
	// Kind selects constant or variable bit rate.
	Kind StreamKind
	// NominalRate is the average consumption/production rate rs.
	NominalRate units.BitRate
	// WriteFraction is the share of traffic written to the device
	// (recording); the rest is read (playback).
	WriteFraction float64
	// SegmentLength is the duration over which a VBR stream holds one rate
	// (ignored for CBR).
	SegmentLength units.Duration
	// Variability is the relative half-range of VBR rate excursions: each
	// segment's rate is uniform in nominal*(1 ± Variability).
	Variability float64
	// Seed makes the VBR pattern reproducible.
	Seed uint64
}

// NewCBRStream returns a constant-bit-rate stream at the given rate with the
// Table I write share.
func NewCBRStream(rate units.BitRate) Stream {
	return Stream{Kind: CBR, NominalRate: rate, WriteFraction: 0.4}
}

// NewVBRStream returns a variable-bit-rate stream averaging the given rate,
// with two-second segments varying ±30 %.
func NewVBRStream(rate units.BitRate, seed uint64) Stream {
	return Stream{
		Kind:          VBR,
		NominalRate:   rate,
		WriteFraction: 0.4,
		SegmentLength: 2 * units.Second,
		Variability:   0.3,
		Seed:          seed,
	}
}

// PeakRate returns the highest instantaneous rate the stream can reach: the
// nominal rate for CBR, and the top of the variability band for VBR. Buffer
// controllers provision wake-up thresholds against this rate.
func (s Stream) PeakRate() units.BitRate {
	if s.Kind == VBR {
		return s.NominalRate.Scale(1 + s.Variability)
	}
	return s.NominalRate
}

// Validate checks the stream description.
func (s Stream) Validate() error {
	var errs []error
	if !s.NominalRate.Positive() {
		errs = append(errs, errors.New("workload: nominal rate must be positive"))
	}
	if s.WriteFraction < 0 || s.WriteFraction > 1 {
		errs = append(errs, errors.New("workload: write fraction must be in [0, 1]"))
	}
	if s.Kind == VBR {
		if !s.SegmentLength.Positive() {
			errs = append(errs, errors.New("workload: VBR streams need a positive segment length"))
		}
		if s.Variability < 0 || s.Variability >= 1 {
			errs = append(errs, errors.New("workload: variability must be in [0, 1)"))
		}
	}
	return errors.Join(errs...)
}

// RatePattern samples the instantaneous stream rate over time. It is safe to
// call with monotonically non-decreasing times.
type RatePattern struct {
	stream     Stream
	rng        *Rng
	segmentEnd units.Duration
	current    units.BitRate
}

// NewRatePattern builds a sampler for the stream.
func NewRatePattern(s Stream) (*RatePattern, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := &RatePattern{stream: s, rng: NewRng(s.Seed ^ 0xa5a5a5a5a5a5a5a5), current: s.NominalRate}
	if s.Kind == VBR {
		p.segmentEnd = 0 // force a draw on first use
	}
	return p, nil
}

// Reset rewinds the pattern to the state NewRatePattern would build for the
// same stream re-seeded with seed, without allocating: a reused pattern
// replays exactly the segment sequence a fresh one would produce. It exists
// so batch replicas can reuse one sampler across seed-varied runs.
func (p *RatePattern) Reset(seed uint64) {
	p.stream.Seed = seed
	p.rng.Seed(seed ^ 0xa5a5a5a5a5a5a5a5)
	p.segmentEnd = 0 // force a draw on first use, as NewRatePattern does
	p.current = p.stream.NominalRate
}

// PeakRate returns the highest rate the pattern can produce.
func (p *RatePattern) PeakRate() units.BitRate { return p.stream.PeakRate() }

// RateAt returns the stream rate in effect at time t.
func (p *RatePattern) RateAt(t units.Duration) units.BitRate {
	if p.stream.Kind == CBR {
		return p.stream.NominalRate
	}
	for t >= p.segmentEnd {
		spread := p.stream.Variability
		factor := 1 - spread + 2*spread*p.rng.Float64()
		p.current = p.stream.NominalRate.Scale(factor)
		p.segmentEnd = p.segmentEnd.Add(p.stream.SegmentLength)
	}
	return p.current
}

// AverageRate returns the long-run average rate of the stream.
func (p *RatePattern) AverageRate() units.BitRate { return p.stream.NominalRate }

// NextRateChange returns the earliest time strictly after t at which RateAt
// may return a different value: the next segment boundary for VBR, never for
// CBR. It lets event-driven integrators step exactly from segment to segment
// instead of slicing time.
func (p *RatePattern) NextRateChange(t units.Duration) units.Duration {
	if p.stream.Kind == CBR {
		return units.Duration(math.Inf(1))
	}
	return NextBoundary(t, p.stream.SegmentLength.Seconds())
}

// NextBoundary returns the first multiple of interval strictly after t. The
// strictness guard matters: k*interval can round to a float at or below t,
// and a "next" change that does not advance time would make event-driven
// integrators skip the boundary entirely.
func NextBoundary(t units.Duration, interval float64) units.Duration {
	k := math.Floor(t.Seconds()/interval) + 1
	next := units.Second.Scale(k * interval)
	if next <= t {
		next = units.Second.Scale((k + 1) * interval)
	}
	return next
}

// BestEffortRequest is one non-streaming (OS / file-system) request.
type BestEffortRequest struct {
	// Arrival is the request arrival time.
	Arrival units.Duration
	// Size is the amount of data moved.
	Size units.Size
	// Write reports whether the request writes to the device.
	Write bool
}

// BestEffortProcess generates background requests whose long-run service
// demand matches a target fraction of device-active time, as the paper's 5 %
// best-effort share does.
//
// Unlike the sequential stream, best-effort requests are random accesses: each
// one pays a positioning (seek) overhead before its transfer. The 5 % share is
// therefore mostly repositioning time, and the background data volume stays
// small compared to the stream — which is why the paper's lifetime equations
// ignore best-effort wear.
type BestEffortProcess struct {
	// TargetFraction is the share of wall-clock time the device should spend
	// serving best-effort traffic.
	TargetFraction float64
	// MeanSize is the mean request size.
	MeanSize units.Size
	// WriteFraction is the share of best-effort requests that write.
	WriteFraction float64
	// ServiceRate is the rate at which the device serves the requests
	// (the aggregate media rate).
	ServiceRate units.BitRate
	// PositioningTime is the per-request repositioning overhead paid before
	// the transfer (a random access, unlike the sequential stream).
	PositioningTime units.Duration
	// Seed makes the arrival pattern reproducible.
	Seed uint64
}

// NewBestEffortProcess returns a process matching the paper's assumptions:
// the given share of time, 4 KiB mean requests, half of them writes, and a
// 2 ms positioning overhead per request (the Table I seek time).
func NewBestEffortProcess(fraction float64, serviceRate units.BitRate, seed uint64) BestEffortProcess {
	return BestEffortProcess{
		TargetFraction:  fraction,
		MeanSize:        4 * units.KiB,
		WriteFraction:   0.5,
		ServiceRate:     serviceRate,
		PositioningTime: 2 * units.Millisecond,
		Seed:            seed,
	}
}

// ServiceTime returns the device-busy time one request of the given size
// costs: the positioning overhead plus the transfer at the service rate.
func (p BestEffortProcess) ServiceTime(size units.Size) units.Duration {
	return p.PositioningTime.Add(p.ServiceRate.TimeFor(size))
}

// Validate checks the process parameters.
func (p BestEffortProcess) Validate() error {
	var errs []error
	if p.TargetFraction < 0 || p.TargetFraction >= 1 {
		errs = append(errs, errors.New("workload: best-effort fraction must be in [0, 1)"))
	}
	if p.TargetFraction > 0 && !p.MeanSize.Positive() {
		errs = append(errs, errors.New("workload: best-effort requests need a positive mean size"))
	}
	if p.WriteFraction < 0 || p.WriteFraction > 1 {
		errs = append(errs, errors.New("workload: best-effort write fraction must be in [0, 1]"))
	}
	if p.TargetFraction > 0 && !p.ServiceRate.Positive() {
		errs = append(errs, errors.New("workload: best-effort service rate must be positive"))
	}
	if p.PositioningTime < 0 {
		errs = append(errs, errors.New("workload: best-effort positioning time must be non-negative"))
	}
	return errors.Join(errs...)
}

// MeanInterarrival returns the mean time between requests implied by the
// target fraction, mean size and service rate.
func (p BestEffortProcess) MeanInterarrival() (units.Duration, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.TargetFraction == 0 {
		return units.Duration(math.Inf(1)), nil
	}
	return p.ServiceTime(p.MeanSize).Scale(1 / p.TargetFraction), nil
}

// Generate produces all requests arriving in [0, horizon).
func (p BestEffortProcess) Generate(horizon units.Duration) ([]BestEffortRequest, error) {
	return p.AppendRequests(nil, horizon)
}

// AppendRequests appends all requests arriving in [0, horizon) to dst and
// returns the extended slice, exactly as Generate would produce them. Passing
// a previous trace's slice truncated to zero length reuses its capacity, so
// reset-and-rerun replicas regenerate their background traffic without
// steady-state allocations.
func (p BestEffortProcess) AppendRequests(dst []BestEffortRequest, horizon units.Duration) ([]BestEffortRequest, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.TargetFraction == 0 || !horizon.Positive() {
		return dst, nil
	}
	mean, err := p.MeanInterarrival()
	if err != nil {
		return nil, err
	}
	rng := NewRng(p.Seed ^ 0x5bd1e9955bd1e995)
	out := dst
	t := units.Second.Scale(rng.Exp(mean.Seconds()))
	for t < horizon {
		size := units.Bit.Scale(rng.Exp(p.MeanSize.Bits()))
		if size < units.Size(512) {
			size = units.Size(512)
		}
		out = append(out, BestEffortRequest{
			Arrival: t,
			Size:    size,
			Write:   rng.Float64() < p.WriteFraction,
		})
		t = t.Add(units.Second.Scale(rng.Exp(mean.Seconds())))
	}
	return out, nil
}

// PlaybackCalendar expands a daily usage pattern (hours of streaming per day)
// into per-year totals, matching the lifetime model's workload accounting.
type PlaybackCalendar struct {
	// HoursPerDay is the daily streaming time.
	HoursPerDay float64
	// DaysPerYear is the number of active days per year (365 in the paper).
	DaysPerYear float64
}

// DefaultCalendar returns the paper's eight-hours-every-day calendar.
func DefaultCalendar() PlaybackCalendar {
	return PlaybackCalendar{HoursPerDay: 8, DaysPerYear: 365}
}

// Validate checks the calendar.
func (c PlaybackCalendar) Validate() error {
	if c.HoursPerDay <= 0 || c.HoursPerDay > 24 {
		return errors.New("workload: hours per day must be in (0, 24]")
	}
	if c.DaysPerYear <= 0 || c.DaysPerYear > 366 {
		return errors.New("workload: days per year must be in (0, 366]")
	}
	return nil
}

// SecondsPerYear returns the total streamed seconds per year.
func (c PlaybackCalendar) SecondsPerYear() units.Duration {
	return units.Hour.Scale(c.HoursPerDay * c.DaysPerYear)
}

// String summarises the calendar.
func (c PlaybackCalendar) String() string {
	return fmt.Sprintf("%.3g h/day, %.3g days/year", c.HoursPerDay, c.DaysPerYear)
}
