package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"memstream/internal/units"
)

// DefaultFrameInterval is the display interval assumed when a trace is too
// short to reveal its own spacing (a single frame): one frame at 25 fps.
const DefaultFrameInterval = units.Duration(1.0 / 25)

// ParseFrames reads a frame trace in the one-frame-per-line text format:
//
//	# comment (blank lines are skipped too)
//	<timestamp> <size> [class]
//
// The timestamp accepts the duration grammar of internal/units without
// spaces ("0.04", "40ms"; bare numbers are seconds) and the size accepts the
// size grammar ("3.1KiB", "25000bit"; bare numbers are bytes). The optional
// class is I, P or B (defaulting to P). Timestamps must be strictly
// increasing; the trace is normalized so the first frame starts at zero.
func ParseFrames(r io.Reader) ([]Frame, error) {
	var frames []Frame
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("workload: trace line %d: want \"timestamp size [class]\", got %d fields", line, len(fields))
		}
		ts, err := units.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		size, err := units.ParseSize(fields[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		class := FrameP
		if len(fields) == 3 {
			class, err = ParseFrameClass(fields[2])
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
			}
		}
		frames = append(frames, Frame{Timestamp: ts, Class: class, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	if len(frames) == 0 {
		return nil, errors.New("workload: trace holds no frames")
	}
	return NormalizeFrames(frames)
}

// ParseFrameClass parses a frame class letter (I, P or B, case-insensitive).
func ParseFrameClass(s string) (FrameClass, error) {
	switch strings.ToUpper(s) {
	case "I":
		return FrameI, nil
	case "P":
		return FrameP, nil
	case "B":
		return FrameB, nil
	default:
		return 0, fmt.Errorf("workload: unknown frame class %q (want I, P or B)", s)
	}
}

// FormatFrames writes a trace in the ParseFrames text format, one frame per
// line with the timestamp in seconds and the size in bits, so a generated
// trace can be replayed through the trace path byte-faithfully.
func FormatFrames(w io.Writer, frames []Frame) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# frame trace: <timestamp seconds> <size> <class>")
	for _, f := range frames {
		if _, err := fmt.Fprintf(bw, "%g %gbit %s\n", f.Timestamp.Seconds(), f.Size.Bits(), f.Class); err != nil {
			return fmt.Errorf("workload: write trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("workload: write trace: %w", err)
	}
	return nil
}

// NormalizeFrames shifts the trace so the first frame starts at time zero,
// renumbers the indices, and validates the result. The input order is
// preserved (timestamps must already be strictly increasing).
func NormalizeFrames(frames []Frame) ([]Frame, error) {
	if len(frames) == 0 {
		return nil, errors.New("workload: trace holds no frames")
	}
	offset := frames[0].Timestamp
	out := make([]Frame, len(frames))
	for i, f := range frames {
		f.Timestamp = f.Timestamp.Sub(offset)
		f.Index = i
		out[i] = f
	}
	if err := ValidateFrames(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateFrames checks a trace in normalized form: at least one frame, the
// first at time zero, timestamps strictly increasing, every size positive,
// and every quantity finite (an infinite timestamp or size would otherwise
// survive parsing — the duration grammar happily scales "1e300y" into
// infinity — and then poison every rate derived from the trace).
func ValidateFrames(frames []Frame) error {
	if len(frames) == 0 {
		return errors.New("workload: trace holds no frames")
	}
	if frames[0].Timestamp != 0 {
		return fmt.Errorf("workload: trace must start at time zero (first frame at %v; NormalizeFrames shifts it)", frames[0].Timestamp)
	}
	for i, f := range frames {
		if !f.Size.Positive() || math.IsInf(f.Size.Bits(), 0) {
			return fmt.Errorf("workload: trace frame %d has non-positive or non-finite size %v", i, f.Size)
		}
		if math.IsInf(f.Timestamp.Seconds(), 0) || math.IsNaN(f.Timestamp.Seconds()) {
			return fmt.Errorf("workload: trace frame %d has a non-finite timestamp", i)
		}
		if i > 0 && f.Timestamp <= frames[i-1].Timestamp {
			return fmt.Errorf("workload: trace timestamps must be strictly increasing (frame %d at %v after %v)",
				i, f.Timestamp, frames[i-1].Timestamp)
		}
	}
	return nil
}

// TracePattern samples the instantaneous demand of a user-supplied frame
// trace: between two frame timestamps the rate is the earlier frame's size
// over the interval. The last frame's interval repeats the one before it
// (DefaultFrameInterval for a single-frame trace). Beyond the trace horizon
// the pattern wraps around and replays from the start, so simulations longer
// than the trace remain well defined.
type TracePattern struct {
	frames  []Frame
	starts  []float64 // frame start times in seconds, starts[0] == 0
	rates   []units.BitRate
	horizon float64
	peak    units.BitRate
	average units.BitRate
}

// NewTracePattern builds a demand sampler over the given frames (in
// ValidateFrames form).
func NewTracePattern(frames []Frame) (*TracePattern, error) {
	if err := ValidateFrames(frames); err != nil {
		return nil, err
	}
	n := len(frames)
	p := &TracePattern{
		frames: frames,
		starts: make([]float64, n),
		rates:  make([]units.BitRate, n),
	}
	lastInterval := DefaultFrameInterval.Seconds()
	if n > 1 {
		lastInterval = frames[n-1].Timestamp.Sub(frames[n-2].Timestamp).Seconds()
	}
	p.horizon = frames[n-1].Timestamp.Seconds() + lastInterval
	var total units.Size
	for i, f := range frames {
		p.starts[i] = f.Timestamp.Seconds()
		end := p.horizon
		if i+1 < n {
			end = frames[i+1].Timestamp.Seconds()
		}
		p.rates[i] = units.BitPerSecond.Scale(f.Size.Bits() / (end - p.starts[i]))
		if p.rates[i] > p.peak {
			p.peak = p.rates[i]
		}
		total = total.Add(f.Size)
	}
	p.average = units.BitPerSecond.Scale(total.Bits() / p.horizon)
	return p, nil
}

// Horizon returns the trace length; the pattern repeats beyond it.
func (p *TracePattern) Horizon() units.Duration { return units.Second.Scale(p.horizon) }

// Frames exposes the trace (for reports and round-trips).
func (p *TracePattern) Frames() []Frame { return p.frames }

// frameIndex returns the frame in effect at the wrapped time w.
func (p *TracePattern) frameIndex(w float64) int {
	// First start strictly greater than w, minus one.
	i := sort.SearchFloat64s(p.starts, w)
	if i == len(p.starts) || p.starts[i] > w {
		i--
	}
	if i < 0 {
		i = 0
	}
	return i
}

// RateAt returns the demand in effect at time t.
func (p *TracePattern) RateAt(t units.Duration) units.BitRate {
	if t < 0 {
		t = 0
	}
	return p.rates[p.frameIndex(mod(t.Seconds(), p.horizon))]
}

// PeakRate returns the largest instantaneous demand of the trace.
func (p *TracePattern) PeakRate() units.BitRate { return p.peak }

// AverageRate returns the trace's long-run average demand.
func (p *TracePattern) AverageRate() units.BitRate { return p.average }

// NextRateChange returns the earliest time strictly after t at which RateAt
// may return a different value: the next frame boundary, or the wrap-around
// itself. A boundary that fails to advance t (a sub-ulp sliver at large t)
// falls through to the boundary after it, mirroring NextBoundary's guard;
// integrators treat a non-advancing result as "no change", so the final
// fallback of one full cycle is safe even at absurd magnitudes.
func (p *TracePattern) NextRateChange(t units.Duration) units.Duration {
	if t < 0 {
		t = 0
	}
	w := mod(t.Seconds(), p.horizon)
	i := sort.SearchFloat64s(p.starts, w)
	for i < len(p.starts) && p.starts[i] <= w {
		i++
	}
	for ; i < len(p.starts); i++ {
		if next := t.Add(units.Second.Scale(p.starts[i] - w)); next > t {
			return next
		}
	}
	return t.Add(units.Second.Scale(p.horizon - w))
}
