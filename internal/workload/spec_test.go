package workload

import (
	"math"
	"testing"

	"memstream/internal/units"
)

func TestSpecValidate(t *testing.T) {
	good := []StreamSpec{
		CBRSpec(1024 * units.Kbps),
		VBRSpec(1024*units.Kbps, 7),
		VideoSpec(1024*units.Kbps, 7),
		TraceSpec([]Frame{
			{Timestamp: 0, Size: 4000},
			{Timestamp: units.Duration(0.04), Size: 5000},
		}),
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%s spec invalid: %v", s.Kind, err)
		}
	}
	bad := []StreamSpec{
		{},                                // no kind
		{Kind: "chaos", Rate: units.Kbps}, // unknown kind
		CBRSpec(0),                        // no rate
		func() StreamSpec { s := VideoSpec(units.Kbps, 1); s.Jitter = 2; return s }(),
		TraceSpec(nil), // no frames
		TraceSpec([]Frame{{Timestamp: units.Second, Size: 4000}}), // not at zero
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d (%q) validated", i, s.Kind)
		}
	}
}

func TestSpecPeakRateBounds(t *testing.T) {
	rate := 1024 * units.Kbps
	if got := CBRSpec(rate).PeakRate(); got != rate {
		t.Errorf("cbr peak = %v, want %v", got, rate)
	}
	if got, want := VBRSpec(rate, 1).PeakRate(), rate.Scale(1.3); math.Abs(got.BitsPerSecond()-want.BitsPerSecond()) > 1 {
		t.Errorf("vbr peak = %v, want %v", got, want)
	}
	// The analytic video bound dominates the realized peak of any trace.
	spec := VideoSpec(rate, 5)
	bound := spec.PeakRate()
	if bound <= rate {
		t.Fatalf("video peak bound %v not above nominal %v", bound, rate)
	}
	p, err := spec.Pattern(60 * units.Second)
	if err != nil {
		t.Fatal(err)
	}
	if realized := p.PeakRate(); realized > bound {
		t.Errorf("realized peak %v exceeds the analytic bound %v", realized, bound)
	}
	// Nothing forces I frames to be the largest class: with inverted
	// weights the bound must still dominate the realized (P-frame) peak.
	inverted := VideoSpec(rate, 5)
	inverted.WeightI, inverted.WeightP, inverted.WeightB = 1, 10, 1
	invBound := inverted.PeakRate()
	ip, err := inverted.Pattern(60 * units.Second)
	if err != nil {
		t.Fatal(err)
	}
	if realized := ip.PeakRate(); realized > invBound {
		t.Errorf("inverted-weight realized peak %v exceeds the bound %v", realized, invBound)
	}
}

// TestSpecVideoHorizonFollowsDuration is the regression test for the
// fixed-60-second CLI horizon bug: the generated trace must cover the whole
// requested duration (here 5 minutes), not silently wrap a shorter window.
func TestSpecVideoHorizonFollowsDuration(t *testing.T) {
	spec := VideoSpec(1024*units.Kbps, 3)
	p, err := spec.Pattern(5 * units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	vp, ok := p.(*VideoRatePattern)
	if !ok {
		t.Fatalf("video spec built a %T, want *VideoRatePattern", p)
	}
	want := int(5 * 60 * 25) // 25 fps over 5 minutes
	if got := len(vp.Frames()); got != want {
		t.Errorf("trace holds %d frames, want %d covering the full 5 minutes", got, want)
	}
}

func TestSpecVideoHorizonCappedAndFloored(t *testing.T) {
	spec := VideoSpec(1024*units.Kbps, 3)
	// Beyond the cap the trace stops growing (the pattern wraps instead).
	long, err := spec.Pattern(2 * MaxTraceHorizon)
	if err != nil {
		t.Fatal(err)
	}
	capFrames := int(MaxTraceHorizon.Seconds() * 25)
	if got := len(long.(*VideoRatePattern).Frames()); got != capFrames {
		t.Errorf("capped trace holds %d frames, want %d", got, capFrames)
	}
	// A duration below one frame interval still yields a (wrapping) one-frame
	// trace instead of an error.
	short, err := spec.Pattern(units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(short.(*VideoRatePattern).Frames()); got != 1 {
		t.Errorf("sub-frame duration yielded %d frames, want 1", got)
	}
}

func TestSpecPatternKinds(t *testing.T) {
	rate := 1024 * units.Kbps
	for _, spec := range []StreamSpec{CBRSpec(rate), VBRSpec(rate, 3), VideoSpec(rate, 3)} {
		p, err := spec.Pattern(10 * units.Second)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		// CBR and VBR report the nominal average exactly; the video pattern
		// reports the realized trace mean, which jitters around nominal.
		if got := p.AverageRate().BitsPerSecond(); math.Abs(got-rate.BitsPerSecond())/rate.BitsPerSecond() > 0.05 {
			t.Errorf("%s average = %v, want near nominal %v", spec.Kind, p.AverageRate(), rate)
		}
		if !p.RateAt(units.Second).Positive() {
			t.Errorf("%s rate at 1 s not positive", spec.Kind)
		}
		if next := p.NextRateChange(units.Second); next <= units.Second && spec.Kind != SpecCBR {
			t.Errorf("%s next rate change %v does not advance", spec.Kind, next)
		}
	}
	if _, err := (StreamSpec{Kind: "chaos"}).Pattern(units.Second); err == nil {
		t.Error("unknown kind produced a pattern")
	}
}

// TestSpecVideoZeroJitterIsDeterministic locks in that an explicit zero
// jitter means "no jitter" — it must not fall back to the 20 % default, so
// every frame of a class has exactly its mean size.
func TestSpecVideoZeroJitterIsDeterministic(t *testing.T) {
	spec := VideoSpec(1024*units.Kbps, 5)
	spec.Jitter = 0
	frames, err := spec.TraceFrames(10 * units.Second)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[FrameClass]units.Size{}
	for _, f := range frames {
		if prev, ok := sizes[f.Class]; ok && prev != f.Size {
			t.Fatalf("jitter-free %v frames vary in size: %v vs %v", f.Class, prev, f.Size)
		}
		sizes[f.Class] = f.Size
	}
}

// TestGenerateTraceRejectsAbsurdFrameCounts locks in the generation bound:
// a horizon × frame-rate product in the billions must error, not overflow
// the float-to-int conversion or exhaust memory.
func TestGenerateTraceRejectsAbsurdFrameCounts(t *testing.T) {
	v := NewVideoStream(1024*units.Kbps, 1)
	v.FrameRate = 1e9
	if _, err := v.GenerateTrace(units.Hour); err == nil {
		t.Error("3.6e12-frame trace accepted")
	}
}

// TestVideoRatePatternWrapAround locks in the wrap-around semantics when
// the run outlives the generated trace: sampling beyond the horizon replays
// the trace from the start, frame boundaries keep advancing, and the
// long-run average is unchanged.
func TestVideoRatePatternWrapAround(t *testing.T) {
	v := NewVideoStream(1024*units.Kbps, 3)
	horizon := 10 * units.Second
	p, err := NewVideoRatePattern(v, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []units.Duration{0, units.Duration(3.7), units.Duration(9.96)} {
		for cycle := 1; cycle <= 3; cycle++ {
			wrapped := at.Add(horizon.Scale(float64(cycle)))
			if got, want := p.RateAt(wrapped), p.RateAt(at); got != want {
				t.Errorf("rate at %v = %v, want the first-cycle value %v", wrapped, got, want)
			}
		}
	}
	// Rate changes stay strictly advancing across the wrap itself.
	at := horizon.Sub(units.Millisecond)
	for i := 0; i < 5; i++ {
		next := p.NextRateChange(at)
		if next <= at {
			t.Fatalf("next rate change %v did not advance past %v", next, at)
		}
		at = next
	}
}
