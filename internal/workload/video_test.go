package workload

import (
	"math"
	"testing"
	"testing/quick"

	"memstream/internal/units"
)

func TestVideoStreamValidation(t *testing.T) {
	good := NewVideoStream(1024*units.Kbps, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default video stream invalid: %v", err)
	}
	mutations := []func(*VideoStream){
		func(v *VideoStream) { v.NominalRate = 0 },
		func(v *VideoStream) { v.FrameRate = 0 },
		func(v *VideoStream) { v.GOPLength = 0 },
		func(v *VideoStream) { v.IPDistance = 0 },
		func(v *VideoStream) { v.IPDistance = v.GOPLength + 1 },
		func(v *VideoStream) { v.WeightI = 0 },
		func(v *VideoStream) { v.Jitter = 1 },
		func(v *VideoStream) { v.WriteFraction = -0.1 },
	}
	for i, mutate := range mutations {
		v := NewVideoStream(1024*units.Kbps, 1)
		mutate(&v)
		if err := v.Validate(); err == nil {
			t.Errorf("mutation %d validated unexpectedly", i)
		}
	}
}

func TestFrameClassString(t *testing.T) {
	if FrameI.String() != "I" || FrameP.String() != "P" || FrameB.String() != "B" {
		t.Error("frame class names wrong")
	}
	if FrameClass(9).String() == "" {
		t.Error("unknown frame class has empty name")
	}
}

func TestGOPStructure(t *testing.T) {
	v := NewVideoStream(1024*units.Kbps, 1)
	// IBBPBBPBBPBB with N=12, M=3.
	want := []FrameClass{FrameI, FrameB, FrameB, FrameP, FrameB, FrameB, FrameP, FrameB, FrameB, FrameP, FrameB, FrameB}
	for k, w := range want {
		if got := v.classOf(k); got != w {
			t.Errorf("frame %d class = %v, want %v", k, got, w)
		}
	}
}

func TestGenerateTraceAveragesToNominalRate(t *testing.T) {
	v := NewVideoStream(1024*units.Kbps, 3)
	horizon := 60 * units.Second
	frames, err := v.GenerateTrace(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1500 { // 25 fps * 60 s
		t.Fatalf("got %d frames, want 1500", len(frames))
	}
	var total units.Size
	for i, f := range frames {
		if f.Index != i {
			t.Fatalf("frame %d has index %d", i, f.Index)
		}
		if !f.Size.Positive() {
			t.Fatalf("frame %d has non-positive size", i)
		}
		total = total.Add(f.Size)
	}
	avg := total.Bits() / horizon.Seconds()
	if math.Abs(avg-1.024e6)/1.024e6 > 0.03 {
		t.Errorf("average rate = %g bps, want within 3%% of 1.024e6", avg)
	}
	// I frames are larger than P frames, which are larger than B frames
	// (compare class means, the per-frame jitter is ±20%).
	var sumI, sumP, sumB float64
	var nI, nP, nB int
	for _, f := range frames {
		switch f.Class {
		case FrameI:
			sumI += f.Size.Bits()
			nI++
		case FrameP:
			sumP += f.Size.Bits()
			nP++
		default:
			sumB += f.Size.Bits()
			nB++
		}
	}
	if nI == 0 || nP == 0 || nB == 0 {
		t.Fatal("some frame class never appeared")
	}
	if !(sumI/float64(nI) > sumP/float64(nP) && sumP/float64(nP) > sumB/float64(nB)) {
		t.Errorf("mean frame sizes not ordered I > P > B: %g %g %g",
			sumI/float64(nI), sumP/float64(nP), sumB/float64(nB))
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	v := NewVideoStream(1024*units.Kbps, 1)
	if _, err := v.GenerateTrace(0); err == nil {
		t.Error("zero horizon accepted")
	}
	v.GOPLength = 0
	if _, err := v.GenerateTrace(units.Second); err == nil {
		t.Error("invalid stream accepted")
	}
}

func TestVideoRatePattern(t *testing.T) {
	v := NewVideoStream(1024*units.Kbps, 5)
	p, err := NewVideoRatePattern(v, 30*units.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Frames()) == 0 {
		t.Fatal("pattern holds no frames")
	}
	// The average demand stays near nominal and the peak exceeds it (I frames).
	if got := p.AverageRate().BitsPerSecond(); math.Abs(got-1.024e6)/1.024e6 > 0.05 {
		t.Errorf("average rate = %g, want near 1.024e6", got)
	}
	if p.PeakRate() <= v.NominalRate {
		t.Errorf("peak rate %v not above nominal %v", p.PeakRate(), v.NominalRate)
	}
	if p.PeakRate().BitsPerSecond() > 5*v.NominalRate.BitsPerSecond() {
		t.Errorf("peak rate %v implausibly high", p.PeakRate())
	}
	// Sampling at any time returns a positive rate bounded by the peak, and
	// times beyond the horizon wrap around rather than failing.
	for _, at := range []units.Duration{0, units.Second, 29 * units.Second, 45 * units.Second, 300 * units.Second, -1} {
		r := p.RateAt(at)
		if !r.Positive() || r > p.PeakRate() {
			t.Errorf("rate at %v = %v outside (0, peak]", at, r)
		}
	}
}

func TestVideoRatePatternRejectsInvalid(t *testing.T) {
	v := NewVideoStream(1024*units.Kbps, 1)
	v.FrameRate = 0
	if _, err := NewVideoRatePattern(v, 10*units.Second); err == nil {
		t.Error("invalid stream accepted")
	}
	good := NewVideoStream(1024*units.Kbps, 1)
	if _, err := NewVideoRatePattern(good, units.Duration(0.001)); err == nil {
		t.Error("horizon shorter than one frame accepted")
	}
}

func TestVideoTraceDeterministic(t *testing.T) {
	v := NewVideoStream(2048*units.Kbps, 11)
	a, err := v.GenerateTrace(10 * units.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.GenerateTrace(10 * units.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

// Property: for any seed and rate, the trace average stays within 5% of the
// nominal rate and every frame is positive.
func TestQuickVideoTraceAverage(t *testing.T) {
	f := func(seed uint64, rawRate uint16) bool {
		rate := units.BitRate(int(rawRate%4000)+64) * units.Kbps
		v := NewVideoStream(rate, seed)
		frames, err := v.GenerateTrace(20 * units.Second)
		if err != nil {
			return false
		}
		var total units.Size
		for _, f := range frames {
			if !f.Size.Positive() {
				return false
			}
			total = total.Add(f.Size)
		}
		avg := total.Bits() / 20
		return math.Abs(avg-rate.BitsPerSecond())/rate.BitsPerSecond() < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
