package workload

import (
	"reflect"
	"testing"

	"memstream/internal/units"
)

// sampleRates walks the pattern through the first minute at a quarter-second
// step, driving the lazy segment draws exactly as an integrator would.
func sampleRates(p *RatePattern) []units.BitRate {
	out := make([]units.BitRate, 0, 240)
	for i := 0; i < 240; i++ {
		out = append(out, p.RateAt(units.Second.Scale(float64(i)*0.25)))
	}
	return out
}

func TestRatePatternResetMatchesFresh(t *testing.T) {
	stream := NewVBRStream(1024*units.Kbps, 1)
	p, err := NewRatePattern(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Advance the pattern well into its sequence before resetting, so stale
	// segment state would be caught.
	_ = sampleRates(p)

	p.Reset(42)
	got := sampleRates(p)

	stream.Seed = 42
	fresh, err := NewRatePattern(stream)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRates(fresh)
	if !reflect.DeepEqual(got, want) {
		t.Error("reset VBR pattern diverges from a freshly built one")
	}
}

func TestVideoRatePatternResetMatchesFresh(t *testing.T) {
	stream := NewVideoStream(1024*units.Kbps, 1)
	horizon := 30 * units.Second
	p, err := NewVideoRatePattern(stream, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Reset(42); err != nil {
		t.Fatal(err)
	}

	stream.Seed = 42
	fresh, err := NewVideoRatePattern(stream, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Frames(), fresh.Frames()) {
		t.Error("reset video trace diverges from a freshly generated one")
	}
	if p.PeakRate() != fresh.PeakRate() {
		t.Errorf("reset peak %v, fresh peak %v", p.PeakRate(), fresh.PeakRate())
	}
	if p.AverageRate() != fresh.AverageRate() {
		t.Errorf("reset average %v, fresh average %v", p.AverageRate(), fresh.AverageRate())
	}
}

func TestVideoRatePatternResetDoesNotAllocate(t *testing.T) {
	p, err := NewVideoRatePattern(NewVideoStream(1024*units.Kbps, 1), 30*units.Second)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(0)
	allocs := testing.AllocsPerRun(20, func() {
		seed++
		if err := p.Reset(seed); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Reset allocates %.1f times per call, want 0", allocs)
	}
}

func TestAppendRequestsMatchesGenerate(t *testing.T) {
	proc := NewBestEffortProcess(0.05, 50*units.Mbps, 7)
	horizon := 2 * units.Minute
	want, err := proc.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no requests generated; the reuse path is untested")
	}

	// Appending into a recycled slice must reproduce the fresh trace exactly.
	buf := make([]BestEffortRequest, 3, len(want)+4)
	got, err := proc.AppendRequests(buf[:0], horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("AppendRequests into a recycled slice diverges from Generate")
	}
	if &got[0] != &buf[:1][0] {
		t.Error("AppendRequests did not reuse the recycled slice's storage")
	}

	// A zero-fraction process appends nothing.
	idle := BestEffortProcess{}
	if out, err := idle.AppendRequests(got[:0], horizon); err != nil || len(out) != 0 {
		t.Errorf("zero-fraction process: got (%d requests, %v)", len(out), err)
	}
}

func TestRngSeedRestartsSequence(t *testing.T) {
	r := NewRng(9)
	first := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r.Seed(9)
	for i, want := range first {
		if got := r.Uint64(); got != want {
			t.Fatalf("draw %d after reseed = %d, want %d", i, got, want)
		}
	}
}
