package workload

import (
	"errors"
	"fmt"

	"memstream/internal/units"
)

// FrameClass is the coding class of a video frame.
type FrameClass int

// Video frame classes in an MPEG-style group of pictures.
const (
	// FrameI is an intra-coded frame (largest).
	FrameI FrameClass = iota
	// FrameP is a predicted frame.
	FrameP
	// FrameB is a bidirectionally predicted frame (smallest).
	FrameB
)

// String names the frame class.
func (c FrameClass) String() string {
	switch c {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return fmt.Sprintf("FrameClass(%d)", int(c))
	}
}

// Frame is one encoded video frame of a trace.
type Frame struct {
	// Index is the display order of the frame.
	Index int
	// Timestamp is the frame's display time.
	Timestamp units.Duration
	// Class is the coding class.
	Class FrameClass
	// Size is the encoded frame size.
	Size units.Size
}

// VideoStream describes an MPEG-like encoded video stream with a periodic
// group-of-pictures (GOP) structure. It refines the coarse VBR model of
// Stream: the instantaneous demand now follows the I/P/B frame pattern of
// real encoders, which is the traffic shape a streaming buffer actually sees.
type VideoStream struct {
	// NominalRate is the long-run average bit rate.
	NominalRate units.BitRate
	// FrameRate is the display rate in frames per second.
	FrameRate float64
	// GOPLength is the number of frames per GOP (N, typically 12 or 15).
	GOPLength int
	// IPDistance is the distance between anchor (I or P) frames (M,
	// typically 3: two B frames between anchors).
	IPDistance int
	// WeightI, WeightP and WeightB are the relative encoded sizes of the
	// frame classes (typical ratios around 5 : 3 : 1).
	WeightI float64
	WeightP float64
	WeightB float64
	// Jitter is the relative standard deviation applied to every frame size
	// (scene-activity noise), in [0, 1).
	Jitter float64
	// WriteFraction is the share of the stream written to the device.
	WriteFraction float64
	// Seed makes the trace reproducible.
	Seed uint64
}

// NewVideoStream returns an MPEG-like stream with a 12-frame GOP (IBBPBBPBBPBB)
// at 25 frames per second, 5:3:1 frame weights and 20 % size jitter.
func NewVideoStream(rate units.BitRate, seed uint64) VideoStream {
	return VideoStream{
		NominalRate:   rate,
		FrameRate:     25,
		GOPLength:     12,
		IPDistance:    3,
		WeightI:       5,
		WeightP:       3,
		WeightB:       1,
		Jitter:        0.2,
		WriteFraction: 0.4,
		Seed:          seed,
	}
}

// Validate checks the stream description.
func (v VideoStream) Validate() error {
	var errs []error
	if !v.NominalRate.Positive() {
		errs = append(errs, errors.New("workload: video nominal rate must be positive"))
	}
	if v.FrameRate <= 0 {
		errs = append(errs, errors.New("workload: frame rate must be positive"))
	}
	if v.GOPLength < 1 {
		errs = append(errs, errors.New("workload: GOP length must be at least 1"))
	}
	if v.IPDistance < 1 || v.IPDistance > v.GOPLength {
		errs = append(errs, errors.New("workload: anchor distance must be in [1, GOP length]"))
	}
	if v.WeightI <= 0 || v.WeightP <= 0 || v.WeightB <= 0 {
		errs = append(errs, errors.New("workload: frame weights must be positive"))
	}
	if v.Jitter < 0 || v.Jitter >= 1 {
		errs = append(errs, errors.New("workload: jitter must be in [0, 1)"))
	}
	if v.WriteFraction < 0 || v.WriteFraction > 1 {
		errs = append(errs, errors.New("workload: write fraction must be in [0, 1]"))
	}
	return errors.Join(errs...)
}

// PeakRate bounds the largest instantaneous demand any trace generated from
// this stream can reach: the largest frame of any class that actually
// occurs in the GOP (its mean at the top of the jitter band) consumed over
// one frame interval. Weights are arbitrary — nothing forces I frames to be
// the largest class — so the bound maximises over the occurring classes.
// The realized peak of a generated trace is at most this bound, so
// admission checks against it are conservative but never unsafe.
func (v VideoStream) PeakRate() units.BitRate {
	meanI, meanP, meanB := v.meanFrameSizes()
	var largest units.Size
	for k := 0; k < v.GOPLength; k++ {
		var mean units.Size
		switch v.classOf(k) {
		case FrameI:
			mean = meanI
		case FrameP:
			mean = meanP
		default:
			mean = meanB
		}
		if mean > largest {
			largest = mean
		}
	}
	return units.BitPerSecond.Scale(largest.Scale(1+v.Jitter).Bits() * v.FrameRate)
}

// classOf returns the coding class of the frame at the given position within
// a GOP (position 0 is the I frame; every IPDistance-th frame is an anchor).
func (v VideoStream) classOf(positionInGOP int) FrameClass {
	if positionInGOP == 0 {
		return FrameI
	}
	if positionInGOP%v.IPDistance == 0 {
		return FrameP
	}
	return FrameB
}

// meanFrameSizes returns the mean encoded size per class such that the
// long-run average rate equals the nominal rate.
func (v VideoStream) meanFrameSizes() (i, p, b units.Size) {
	// Count frames per class in one GOP.
	var nI, nP, nB float64
	for k := 0; k < v.GOPLength; k++ {
		switch v.classOf(k) {
		case FrameI:
			nI++
		case FrameP:
			nP++
		default:
			nB++
		}
	}
	gopDuration := float64(v.GOPLength) / v.FrameRate
	gopBits := v.NominalRate.BitsPerSecond() * gopDuration
	unit := gopBits / (nI*v.WeightI + nP*v.WeightP + nB*v.WeightB)
	return units.Bit.Scale(unit * v.WeightI), units.Bit.Scale(unit * v.WeightP), units.Bit.Scale(unit * v.WeightB)
}

// GenerateTrace produces the frame sequence covering [0, horizon).
func (v VideoStream) GenerateTrace(horizon units.Duration) ([]Frame, error) {
	return v.AppendTrace(nil, horizon)
}

// AppendTrace appends the frame sequence covering [0, horizon) to dst and
// returns the extended slice, exactly as GenerateTrace would produce it.
// Passing a previous trace's slice truncated to zero length reuses its
// capacity, so seed-varied replicas regenerate their traces without
// steady-state allocations.
func (v VideoStream) AppendTrace(dst []Frame, horizon units.Duration) ([]Frame, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if !horizon.Positive() {
		return nil, errors.New("workload: horizon must be positive")
	}
	meanI, meanP, meanB := v.meanFrameSizes()
	rng := NewRng(v.Seed ^ 0x9e3779b97f4a7c15)
	frameInterval := units.Second.Scale(1 / v.FrameRate)
	// Defence against absurd horizon × frame-rate products: beyond this the
	// float-to-int conversion would overflow (or the allocation would take
	// the process down), so fail loudly instead.
	const maxFrames = 100_000_000
	if n := horizon.Seconds() * v.FrameRate; n > maxFrames {
		return nil, fmt.Errorf("workload: trace of %.3g frames exceeds the %d-frame generation bound", n, maxFrames)
	}
	total := int(horizon.Seconds() * v.FrameRate)
	frames := dst
	if frames == nil {
		frames = make([]Frame, 0, total)
	}
	for idx := 0; idx < total; idx++ {
		class := v.classOf(idx % v.GOPLength)
		var mean units.Size
		switch class {
		case FrameI:
			mean = meanI
		case FrameP:
			mean = meanP
		default:
			mean = meanB
		}
		// Symmetric jitter keeps the long-run mean on target.
		factor := 1 + v.Jitter*(2*rng.Float64()-1)
		size := mean.Scale(factor)
		if size < 8 {
			size = 8
		}
		frames = append(frames, Frame{
			Index:     idx,
			Timestamp: frameInterval.Scale(float64(idx)),
			Class:     class,
			Size:      size,
		})
	}
	return frames, nil
}

// VideoRatePattern samples the instantaneous demand of a video trace: within
// each frame interval the rate is the frame size divided by the interval.
type VideoRatePattern struct {
	stream        VideoStream
	frames        []Frame
	frameInterval units.Duration
	horizon       units.Duration
	// genHorizon is the horizon the trace was requested for (the realized
	// horizon above is quantized to whole frames); Reset regenerates over it.
	genHorizon units.Duration
	peak       units.BitRate
}

// NewVideoRatePattern builds a demand sampler covering the given horizon. The
// pattern repeats (wraps around) beyond the horizon, so simulations longer
// than the generated trace remain well defined.
func NewVideoRatePattern(v VideoStream, horizon units.Duration) (*VideoRatePattern, error) {
	frames, err := v.GenerateTrace(horizon)
	if err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, errors.New("workload: horizon too short for a single frame")
	}
	p := &VideoRatePattern{
		stream:        v,
		frames:        frames,
		frameInterval: units.Second.Scale(1 / v.FrameRate),
		horizon:       units.Second.Scale(float64(len(frames)) / v.FrameRate),
		genHorizon:    horizon,
	}
	p.rescanPeak()
	return p, nil
}

// rescanPeak recomputes the realized peak demand over the current trace.
func (p *VideoRatePattern) rescanPeak() {
	p.peak = 0
	for _, f := range p.frames {
		if !p.frameInterval.Positive() {
			continue
		}
		r := units.BitPerSecond.Scale(f.Size.Bits() / p.frameInterval.Seconds())
		if r > p.peak {
			p.peak = r
		}
	}
}

// Reset regenerates the trace in place for the stream re-seeded with seed,
// reusing the existing frame storage, so the pattern ends up exactly as
// NewVideoRatePattern would build it for that seed — without allocating. It
// exists so batch replicas can reuse one pattern across seed-varied runs.
func (p *VideoRatePattern) Reset(seed uint64) error {
	p.stream.Seed = seed
	frames, err := p.stream.AppendTrace(p.frames[:0], p.genHorizon)
	if err != nil {
		return err
	}
	p.frames = frames
	p.horizon = units.Second.Scale(float64(len(frames)) / p.stream.FrameRate)
	p.rescanPeak()
	return nil
}

// RateAt returns the demand in effect at time t.
func (p *VideoRatePattern) RateAt(t units.Duration) units.BitRate {
	if t < 0 {
		t = 0
	}
	wrapped := units.Second.Scale(mod(t.Seconds(), p.horizon.Seconds()))
	idx := int(wrapped.Seconds() / p.frameInterval.Seconds())
	if idx >= len(p.frames) {
		idx = len(p.frames) - 1
	}
	return units.BitPerSecond.Scale(p.frames[idx].Size.Bits() / p.frameInterval.Seconds())
}

// PeakRate returns the largest instantaneous demand of the trace.
func (p *VideoRatePattern) PeakRate() units.BitRate { return p.peak }

// NextRateChange returns the earliest time strictly after t at which RateAt
// may return a different value: the next frame boundary. Boundaries are
// multiples of the frame interval even across the wrap-around, so
// event-driven integrators can step frame by frame.
func (p *VideoRatePattern) NextRateChange(t units.Duration) units.Duration {
	if t < 0 {
		t = 0
	}
	return NextBoundary(t, p.frameInterval.Seconds())
}

// AverageRate returns the long-run average demand of the trace.
func (p *VideoRatePattern) AverageRate() units.BitRate {
	var total units.Size
	for _, f := range p.frames {
		total = total.Add(f.Size)
	}
	return units.BitPerSecond.Scale(total.Bits() / p.horizon.Seconds())
}

// Frames exposes the generated trace (for analyses and reports).
func (p *VideoRatePattern) Frames() []Frame { return p.frames }

func mod(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	m := a - b*float64(int(a/b))
	if m < 0 {
		m += b
	}
	return m
}
