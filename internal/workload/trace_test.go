package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"memstream/internal/units"
)

func TestParseFrames(t *testing.T) {
	const text = `# a three-frame trace
0 4000bit I
40ms 1000bit
0.08 500 B
`
	frames, err := ParseFrames(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("parsed %d frames, want 3", len(frames))
	}
	if frames[0].Class != FrameI || frames[1].Class != FrameP || frames[2].Class != FrameB {
		t.Errorf("classes = %v %v %v, want I P(default) B", frames[0].Class, frames[1].Class, frames[2].Class)
	}
	if frames[0].Size != 4000 {
		t.Errorf("frame 0 size = %v, want 4000 bit", frames[0].Size)
	}
	// Bare sizes are bytes, like everywhere else in the repo.
	if frames[2].Size != 500*units.Byte {
		t.Errorf("frame 2 size = %v, want 500 bytes", frames[2].Size)
	}
	if got := frames[1].Timestamp.Seconds(); math.Abs(got-0.04) > 1e-12 {
		t.Errorf("frame 1 timestamp = %v, want 40 ms", frames[1].Timestamp)
	}
}

func TestParseFramesNormalizesOffset(t *testing.T) {
	frames, err := ParseFrames(strings.NewReader("10 4000bit\n10.5 4000bit\n"))
	if err != nil {
		t.Fatal(err)
	}
	if frames[0].Timestamp != 0 || frames[1].Timestamp != units.Duration(0.5) {
		t.Errorf("offset trace not shifted to zero: %v, %v", frames[0].Timestamp, frames[1].Timestamp)
	}
}

func TestParseFramesErrors(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"comments only":       "# nothing\n\n",
		"one field":           "0.04\n",
		"four fields":         "0 4000bit I extra\n",
		"bad timestamp":       "oops 4000bit\n",
		"bad size":            "0 parsecs\n",
		"bad class":           "0 4000bit X\n",
		"non-increasing time": "0 4000bit\n0 4000bit\n",
		"zero size":           "0 0bit\n",
	}
	for name, text := range cases {
		if _, err := ParseFrames(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFormatFramesRoundTrip(t *testing.T) {
	v := NewVideoStream(1024*units.Kbps, 11)
	frames, err := v.GenerateTrace(2 * units.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FormatFrames(&buf, frames); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(frames) {
		t.Fatalf("round trip lost frames: %d vs %d", len(parsed), len(frames))
	}
	for i := range frames {
		if parsed[i].Size != frames[i].Size || parsed[i].Class != frames[i].Class {
			t.Fatalf("frame %d changed in round trip: %+v vs %+v", i, parsed[i], frames[i])
		}
		if math.Abs(parsed[i].Timestamp.Seconds()-frames[i].Timestamp.Seconds()) > 1e-9 {
			t.Fatalf("frame %d timestamp drifted: %v vs %v", i, parsed[i].Timestamp, frames[i].Timestamp)
		}
	}
}

func TestTracePatternRates(t *testing.T) {
	frames := []Frame{
		{Timestamp: 0, Size: 4000},                   // 4000 bit over 0.5 s = 8 kbps
		{Timestamp: units.Duration(0.5), Size: 1000}, // 1000 bit over 0.5 s = 2 kbps
		{Timestamp: units.Duration(1.0), Size: 2000}, // repeats the 0.5 s interval: 4 kbps
	}
	p, err := NewTracePattern(frames)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Horizon(); got != units.Duration(1.5) {
		t.Errorf("horizon = %v, want 1.5 s (last interval repeated)", got)
	}
	checks := []struct {
		at   units.Duration
		want units.BitRate
	}{
		{0, 8000}, {units.Duration(0.49), 8000},
		{units.Duration(0.5), 2000}, {units.Duration(0.99), 2000},
		{units.Duration(1.0), 4000}, {units.Duration(1.49), 4000},
		// Wrap-around: later cycles replay the first (3.1 s = 2 cycles + 0.1 s,
		// 4.0 s = 2 cycles + 1.0 s).
		{units.Duration(1.5), 8000}, {units.Duration(2.0), 2000}, {units.Duration(3.1), 8000}, {units.Duration(4.0), 4000},
	}
	for _, c := range checks {
		if got := p.RateAt(c.at); math.Abs(got.BitsPerSecond()-c.want.BitsPerSecond()) > 1e-6 {
			t.Errorf("rate at %v = %v, want %v", c.at, got, c.want)
		}
	}
	if got := p.PeakRate(); got != 8000 {
		t.Errorf("peak = %v, want 8 kbps", got)
	}
	if got := p.AverageRate().BitsPerSecond(); math.Abs(got-7000/1.5) > 1e-6 {
		t.Errorf("average = %v, want %v", got, 7000/1.5)
	}
}

func TestTracePatternNextRateChange(t *testing.T) {
	p, err := NewTracePattern([]Frame{
		{Timestamp: 0, Size: 4000},
		{Timestamp: units.Duration(0.5), Size: 1000},
		{Timestamp: units.Duration(1.0), Size: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		at, want units.Duration
	}{
		{0, units.Duration(0.5)},
		{units.Duration(0.5), units.Duration(1.0)},
		{units.Duration(1.2), units.Duration(1.5)}, // the wrap itself is a change point
		{units.Duration(1.5), units.Duration(2.0)}, // second cycle
	}
	for _, c := range checks {
		if got := p.NextRateChange(c.at); math.Abs(got.Seconds()-c.want.Seconds()) > 1e-9 {
			t.Errorf("next change after %v = %v, want %v", c.at, got, c.want)
		}
	}
	// Walking change to change always advances.
	at := units.Duration(0)
	for i := 0; i < 20; i++ {
		next := p.NextRateChange(at)
		if next <= at {
			t.Fatalf("change %d: %v does not advance past %v", i, next, at)
		}
		at = next
	}
}

func TestTracePatternSingleFrame(t *testing.T) {
	p, err := NewTracePattern([]Frame{{Timestamp: 0, Size: 400}})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Horizon(); got != DefaultFrameInterval {
		t.Errorf("single-frame horizon = %v, want the default interval %v", got, DefaultFrameInterval)
	}
	want := 400 / DefaultFrameInterval.Seconds()
	if got := p.RateAt(units.Second).BitsPerSecond(); math.Abs(got-want) > 1e-9 {
		t.Errorf("rate = %v, want %v", got, want)
	}
}
