package workload

import (
	"errors"
	"fmt"

	"memstream/internal/units"
)

// SpecKind names a stream workload family. The string values are the wire
// and CLI spellings ("stream": "video", memssim -stream video), so every
// layer agrees on one vocabulary.
type SpecKind string

// The built-in workload kinds.
const (
	// SpecCBR is a constant-bit-rate stream.
	SpecCBR SpecKind = "cbr"
	// SpecVBR is the segment-wise variable-bit-rate stream.
	SpecVBR SpecKind = "vbr"
	// SpecVideo is the MPEG-like frame-accurate video trace, generated from
	// a GOP structure.
	SpecVideo SpecKind = "video"
	// SpecTrace is a user-supplied frame trace.
	SpecTrace SpecKind = "trace"
)

// specKinds lists the valid kinds for error messages.
const specKinds = `"cbr", "vbr", "video" or "trace"`

// MaxTraceHorizon caps the length of a generated video trace. A simulation
// longer than the cap replays the trace from the start (the wrap-around is
// explicit in the pattern, not an accident of a fixed generation window), so
// memory per run stays bounded while every run shorter than the cap sees a
// trace covering its full duration.
const MaxTraceHorizon = units.Hour

// Pattern samples piecewise-constant stream demand and announces its own
// rate changes, so event-driven integrators can step exactly from change to
// change. RatePattern, VideoRatePattern and TracePattern all implement it.
type Pattern interface {
	// RateAt returns the demand in effect at time t.
	RateAt(t units.Duration) units.BitRate
	// PeakRate returns the largest demand the pattern can produce.
	PeakRate() units.BitRate
	// AverageRate returns the long-run average demand.
	AverageRate() units.BitRate
	// NextRateChange returns the earliest time strictly after t at which
	// RateAt may return a different value.
	NextRateChange(t units.Duration) units.Duration
}

// StreamSpec is the typed stream description shared by every layer: the
// simulator consumes it directly, the service parses requests into it and
// the CLI builds it from flags. Exactly one workload family is active,
// selected by Kind; the other families' fields are ignored.
type StreamSpec struct {
	// Kind selects the workload family.
	Kind SpecKind
	// Rate is the nominal (long-run average) stream rate. Ignored for
	// SpecTrace, where the rate is derived from the frames.
	Rate units.BitRate
	// WriteFraction is the share of the stream written to the device.
	WriteFraction float64
	// Seed makes the stochastic kinds (vbr, video) reproducible.
	Seed uint64

	// SegmentLength and Variability parameterise SpecVBR (zero values take
	// the NewVBRStream defaults: two-second segments, ±30 %).
	SegmentLength units.Duration
	Variability   float64

	// FrameRate, GOPLength, IPDistance, the class weights and Jitter
	// parameterise SpecVideo. Zero values of the first six take the
	// NewVideoStream defaults (25 fps, N=12, M=3, 5:3:1 weights); Jitter is
	// taken verbatim, because zero is a meaningful value there (a
	// deterministic trace) — the VideoSpec constructor seeds the 20 %
	// default.
	FrameRate  float64
	GOPLength  int
	IPDistance int
	WeightI    float64
	WeightP    float64
	WeightB    float64
	Jitter     float64

	// Frames is the user-supplied trace of SpecTrace, with timestamps
	// starting at zero and strictly increasing (ParseFrames and
	// NormalizeFrames produce this form).
	Frames []Frame

	// trace memoizes the pattern over Frames. The TraceSpec constructor
	// fills it so validation, rate bounds and the simulator share one
	// O(frames) construction (the pattern is read-only after construction
	// and safe to share, unlike the stateful VBR sampler); hand-built specs
	// leave it nil and fall back to building per use.
	trace *TracePattern
}

// CBRSpec returns a constant-bit-rate spec at the given rate with the
// Table I write share.
func CBRSpec(rate units.BitRate) StreamSpec {
	return StreamSpec{Kind: SpecCBR, Rate: rate, WriteFraction: 0.4}
}

// VBRSpec returns a variable-bit-rate spec with the NewVBRStream defaults.
func VBRSpec(rate units.BitRate, seed uint64) StreamSpec {
	s := NewVBRStream(rate, seed)
	return StreamSpec{
		Kind:          SpecVBR,
		Rate:          rate,
		WriteFraction: s.WriteFraction,
		Seed:          seed,
		SegmentLength: s.SegmentLength,
		Variability:   s.Variability,
	}
}

// VideoSpec returns an MPEG-like video spec with the NewVideoStream
// defaults (12-frame GOP at 25 fps, 5:3:1 weights, 20 % jitter).
func VideoSpec(rate units.BitRate, seed uint64) StreamSpec {
	v := NewVideoStream(rate, seed)
	return StreamSpec{
		Kind:          SpecVideo,
		Rate:          rate,
		WriteFraction: v.WriteFraction,
		Seed:          seed,
		FrameRate:     v.FrameRate,
		GOPLength:     v.GOPLength,
		IPDistance:    v.IPDistance,
		WeightI:       v.WeightI,
		WeightP:       v.WeightP,
		WeightB:       v.WeightB,
		Jitter:        v.Jitter,
	}
}

// TraceSpec returns a spec replaying the given frames with the Table I
// write share. The frames should be in NormalizeFrames form (Validate
// reports them otherwise) and must not be mutated afterwards: the spec
// builds its demand pattern over them once, here.
func TraceSpec(frames []Frame) StreamSpec {
	s := StreamSpec{Kind: SpecTrace, WriteFraction: 0.4, Frames: frames}
	if p, err := NewTracePattern(frames); err == nil {
		s.trace = p
	}
	return s
}

// tracePattern returns the memoized pattern over Frames, building it on
// demand for hand-constructed specs.
func (s StreamSpec) tracePattern() (*TracePattern, error) {
	if s.trace != nil {
		return s.trace, nil
	}
	return NewTracePattern(s.Frames)
}

// stream converts the CBR/VBR families to the legacy Stream description.
func (s StreamSpec) stream() Stream {
	st := Stream{
		Kind:          CBR,
		NominalRate:   s.Rate,
		WriteFraction: s.WriteFraction,
	}
	if s.Kind == SpecVBR {
		st.Kind = VBR
		st.SegmentLength = s.SegmentLength
		st.Variability = s.Variability
		st.Seed = s.Seed
		if !st.SegmentLength.Positive() {
			st.SegmentLength = 2 * units.Second
		}
		if st.Variability == 0 {
			st.Variability = 0.3
		}
	}
	return st
}

// video converts the SpecVideo family to a VideoStream, applying the
// NewVideoStream defaults to zero-valued fields. Jitter is the one field
// for which zero is a meaningful value (a deterministic, jitter-free
// trace), so it is taken verbatim; the VideoSpec constructor seeds it with
// the 20 % default.
func (s StreamSpec) video() VideoStream {
	v := NewVideoStream(s.Rate, s.Seed)
	v.WriteFraction = s.WriteFraction
	v.Jitter = s.Jitter
	if s.FrameRate > 0 {
		v.FrameRate = s.FrameRate
	}
	if s.GOPLength > 0 {
		v.GOPLength = s.GOPLength
	}
	if s.IPDistance > 0 {
		v.IPDistance = s.IPDistance
	}
	if s.WeightI > 0 {
		v.WeightI = s.WeightI
	}
	if s.WeightP > 0 {
		v.WeightP = s.WeightP
	}
	if s.WeightB > 0 {
		v.WeightB = s.WeightB
	}
	return v
}

// Validate checks the spec for its active family.
func (s StreamSpec) Validate() error {
	switch s.Kind {
	case SpecCBR, SpecVBR:
		return s.stream().Validate()
	case SpecVideo:
		return s.video().Validate()
	case SpecTrace:
		var errs []error
		if s.WriteFraction < 0 || s.WriteFraction > 1 {
			errs = append(errs, errors.New("workload: write fraction must be in [0, 1]"))
		}
		if err := ValidateFrames(s.Frames); err != nil {
			errs = append(errs, err)
		}
		return errors.Join(errs...)
	default:
		return fmt.Errorf("workload: unknown stream kind %q (want %s)", string(s.Kind), specKinds)
	}
}

// RateBounds returns the long-run average and the largest instantaneous
// demand the spec can produce in one pass: nominal and nominal for CBR,
// nominal and the top of the variability band for VBR, nominal and the
// largest possible I frame over one frame interval for video, and the
// trace's own mean and largest frame for SpecTrace (built once — the trace
// scan is O(frames)). Buffer provisioning and media-rate admission check
// against the peak; it bounds the realized pattern peak from above.
func (s StreamSpec) RateBounds() (average, peak units.BitRate) {
	switch s.Kind {
	case SpecVideo:
		return s.Rate, s.video().PeakRate()
	case SpecTrace:
		p, err := s.tracePattern()
		if err != nil {
			return 0, 0
		}
		return p.AverageRate(), p.PeakRate()
	default:
		return s.Rate, s.stream().PeakRate()
	}
}

// PeakRate bounds the largest instantaneous demand the spec can produce.
func (s StreamSpec) PeakRate() units.BitRate {
	_, peak := s.RateBounds()
	return peak
}

// AverageRate returns the long-run average demand: the nominal rate for the
// generated kinds, the trace mean for SpecTrace.
func (s StreamSpec) AverageRate() units.BitRate {
	average, _ := s.RateBounds()
	return average
}

// TraceFrames returns the frame trace a run of the given duration would
// replay: the generated video trace (same horizon derivation as Pattern) or
// the user-supplied frames. CBR and VBR streams have no frame
// representation and return an error.
func (s StreamSpec) TraceFrames(duration units.Duration) ([]Frame, error) {
	p, err := s.Pattern(duration)
	if err != nil {
		return nil, err
	}
	switch t := p.(type) {
	case *VideoRatePattern:
		return t.Frames(), nil
	case *TracePattern:
		return t.Frames(), nil
	}
	return nil, fmt.Errorf("workload: %q streams have no frame trace", string(s.Kind))
}

// Pattern builds the demand sampler for a run of the given duration. For
// SpecVideo the trace horizon is the duration itself, capped at
// MaxTraceHorizon and floored at one frame interval; runs beyond the
// generated horizon wrap around explicitly (VideoRatePattern and
// TracePattern both replay from the start). CBR and VBR patterns are
// unbounded and need no horizon.
func (s StreamSpec) Pattern(duration units.Duration) (Pattern, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case SpecCBR, SpecVBR:
		return NewRatePattern(s.stream())
	case SpecVideo:
		v := s.video()
		horizon := duration
		if horizon > MaxTraceHorizon {
			horizon = MaxTraceHorizon
		}
		if interval := units.Second.Scale(1 / v.FrameRate); horizon < interval {
			horizon = interval
		}
		return NewVideoRatePattern(v, horizon)
	case SpecTrace:
		return s.tracePattern()
	default:
		return nil, fmt.Errorf("workload: unknown stream kind %q (want %s)", string(s.Kind), specKinds)
	}
}
