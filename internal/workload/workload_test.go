package workload

import (
	"math"
	"testing"
	"testing/quick"

	"memstream/internal/units"
)

func TestRngDeterministic(t *testing.T) {
	a, b := NewRng(42), NewRng(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRng(43)
	same := true
	a = NewRng(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestRngFloat64Range(t *testing.T) {
	r := NewRng(7)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %g, want about 0.5", mean)
	}
}

func TestRngExpMean(t *testing.T) {
	r := NewRng(11)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	if mean := sum / n; mean < 2.8 || mean > 3.2 {
		t.Errorf("Exp mean = %g, want about 3", mean)
	}
}

func TestRngIntn(t *testing.T) {
	r := NewRng(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
	if r.Intn(0) != 0 {
		t.Error("Intn(0) should return 0")
	}
}

func TestStreamValidation(t *testing.T) {
	good := NewCBRStream(1024 * units.Kbps)
	if err := good.Validate(); err != nil {
		t.Errorf("CBR stream invalid: %v", err)
	}
	vbr := NewVBRStream(1024*units.Kbps, 1)
	if err := vbr.Validate(); err != nil {
		t.Errorf("VBR stream invalid: %v", err)
	}
	bad := []Stream{
		{Kind: CBR, NominalRate: 0},
		{Kind: CBR, NominalRate: 1024 * units.Kbps, WriteFraction: 1.5},
		{Kind: VBR, NominalRate: 1024 * units.Kbps, SegmentLength: 0, Variability: 0.3},
		{Kind: VBR, NominalRate: 1024 * units.Kbps, SegmentLength: units.Second, Variability: 1.2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("stream %d validated unexpectedly: %+v", i, s)
		}
	}
}

func TestCBRPatternIsConstant(t *testing.T) {
	p, err := NewRatePattern(NewCBRStream(1024 * units.Kbps))
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []units.Duration{0, units.Second, units.Hour} {
		if got := p.RateAt(at); got != 1024*units.Kbps {
			t.Errorf("CBR rate at %v = %v", at, got)
		}
	}
	if p.AverageRate() != 1024*units.Kbps {
		t.Errorf("AverageRate = %v", p.AverageRate())
	}
}

func TestVBRPatternBoundedAndVarying(t *testing.T) {
	stream := NewVBRStream(1024*units.Kbps, 99)
	p, err := NewRatePattern(stream)
	if err != nil {
		t.Fatal(err)
	}
	lo := stream.NominalRate.Scale(1 - stream.Variability)
	hi := stream.NominalRate.Scale(1 + stream.Variability)
	seen := make(map[int64]bool)
	var sum float64
	const samples = 500
	for i := 0; i < samples; i++ {
		at := units.Duration(i) * stream.SegmentLength
		rate := p.RateAt(at)
		if rate < lo-1 || rate > hi+1 {
			t.Fatalf("VBR rate %v outside [%v, %v]", rate, lo, hi)
		}
		seen[int64(rate)] = true
		sum += rate.BitsPerSecond()
	}
	if len(seen) < 10 {
		t.Errorf("VBR pattern produced only %d distinct rates", len(seen))
	}
	mean := sum / samples
	if mean < 0.9*stream.NominalRate.BitsPerSecond() || mean > 1.1*stream.NominalRate.BitsPerSecond() {
		t.Errorf("VBR mean rate = %g, want near nominal %g", mean, stream.NominalRate.BitsPerSecond())
	}
}

func TestVBRPatternDeterministicPerSeed(t *testing.T) {
	a, _ := NewRatePattern(NewVBRStream(1024*units.Kbps, 7))
	b, _ := NewRatePattern(NewVBRStream(1024*units.Kbps, 7))
	for i := 0; i < 50; i++ {
		at := units.Duration(i) * units.Second
		if a.RateAt(at) != b.RateAt(at) {
			t.Fatal("same seed produced different VBR patterns")
		}
	}
}

func TestNewRatePatternRejectsInvalid(t *testing.T) {
	if _, err := NewRatePattern(Stream{Kind: CBR}); err == nil {
		t.Error("invalid stream accepted")
	}
}

func TestBestEffortProcessValidation(t *testing.T) {
	good := NewBestEffortProcess(0.05, 102.4*units.Mbps, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("default process invalid: %v", err)
	}
	bad := []BestEffortProcess{
		{TargetFraction: -0.1},
		{TargetFraction: 1.0},
		{TargetFraction: 0.05, MeanSize: 0, ServiceRate: units.Mbps},
		{TargetFraction: 0.05, MeanSize: units.KiB, WriteFraction: 2, ServiceRate: units.Mbps},
		{TargetFraction: 0.05, MeanSize: units.KiB, ServiceRate: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("process %d validated unexpectedly: %+v", i, p)
		}
	}
	// A zero-fraction process is valid and generates nothing.
	idle := BestEffortProcess{TargetFraction: 0}
	if err := idle.Validate(); err != nil {
		t.Errorf("zero-fraction process invalid: %v", err)
	}
	reqs, err := idle.Generate(units.Hour)
	if err != nil || len(reqs) != 0 {
		t.Errorf("zero-fraction process generated %d requests, err %v", len(reqs), err)
	}
}

func TestBestEffortMeanInterarrival(t *testing.T) {
	p := NewBestEffortProcess(0.05, 102.4*units.Mbps, 1)
	mean, err := p.MeanInterarrival()
	if err != nil {
		t.Fatal(err)
	}
	// Service per request: 2 ms positioning + 4 KiB / 102.4 Mbps = 2.32 ms;
	// at 5% load the mean interarrival is 46.4 ms.
	want := (0.002 + 4.0*1024*8/102.4e6) / 0.05
	if math.Abs(mean.Seconds()-want)/want > 1e-9 {
		t.Errorf("mean interarrival = %g s, want %g", mean.Seconds(), want)
	}
	if got := p.ServiceTime(4 * units.KiB).Seconds(); math.Abs(got-(want*0.05)) > 1e-12 {
		t.Errorf("ServiceTime = %g s, want %g", got, want*0.05)
	}
	idle := BestEffortProcess{TargetFraction: 0}
	m, err := idle.MeanInterarrival()
	if err != nil || !math.IsInf(m.Seconds(), 1) {
		t.Errorf("idle interarrival = %v, %v", m, err)
	}
}

func TestBestEffortGenerateMatchesTargetFraction(t *testing.T) {
	serviceRate := 102.4 * units.Mbps
	p := NewBestEffortProcess(0.05, serviceRate, 3)
	horizon := 10 * units.Minute
	reqs, err := p.Generate(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	var busy units.Duration
	prev := units.Duration(-1)
	for _, r := range reqs {
		if r.Arrival < 0 || r.Arrival >= horizon {
			t.Fatalf("arrival %v outside horizon", r.Arrival)
		}
		if r.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = r.Arrival
		if !r.Size.Positive() {
			t.Fatal("non-positive request size")
		}
		busy = busy.Add(p.ServiceTime(r.Size))
	}
	fraction := busy.Seconds() / horizon.Seconds()
	if fraction < 0.03 || fraction > 0.07 {
		t.Errorf("generated best-effort load = %g of time, want about 0.05", fraction)
	}
	// Both read and write requests appear.
	writes := 0
	for _, r := range reqs {
		if r.Write {
			writes++
		}
	}
	if writes == 0 || writes == len(reqs) {
		t.Errorf("write mix degenerate: %d of %d", writes, len(reqs))
	}
}

func TestBestEffortGenerateDeterministic(t *testing.T) {
	p := NewBestEffortProcess(0.05, 102.4*units.Mbps, 9)
	a, err := p.Generate(units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(units.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("different request counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different request streams")
		}
	}
}

func TestBestEffortGenerateRejectsInvalid(t *testing.T) {
	p := BestEffortProcess{TargetFraction: 0.5, MeanSize: 0}
	if _, err := p.Generate(units.Minute); err == nil {
		t.Error("invalid process accepted")
	}
}

func TestPlaybackCalendar(t *testing.T) {
	c := DefaultCalendar()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.SecondsPerYear().Seconds(); math.Abs(got-1.0512e7) > 1 {
		t.Errorf("SecondsPerYear = %g, want 1.0512e7", got)
	}
	if c.String() == "" {
		t.Error("empty calendar string")
	}
	bad := []PlaybackCalendar{
		{HoursPerDay: 0, DaysPerYear: 365},
		{HoursPerDay: 25, DaysPerYear: 365},
		{HoursPerDay: 8, DaysPerYear: 0},
		{HoursPerDay: 8, DaysPerYear: 400},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("calendar %d validated unexpectedly: %+v", i, c)
		}
	}
}

// Property: VBR rates always stay within the configured variability band.
func TestQuickVBRBounds(t *testing.T) {
	f := func(seed uint64, rawVar uint8) bool {
		variability := float64(rawVar%90) / 100
		s := Stream{
			Kind:          VBR,
			NominalRate:   1024 * units.Kbps,
			WriteFraction: 0.4,
			SegmentLength: units.Second,
			Variability:   variability,
			Seed:          seed,
		}
		p, err := NewRatePattern(s)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			rate := p.RateAt(units.Duration(i) * units.Second)
			lo := s.NominalRate.Scale(1 - variability)
			hi := s.NominalRate.Scale(1 + variability)
			if rate < lo-1 || rate > hi+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: best-effort arrivals are sorted and within the horizon for any seed.
func TestQuickBestEffortArrivalsSorted(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewBestEffortProcess(0.05, 102.4*units.Mbps, seed)
		reqs, err := p.Generate(30 * units.Second)
		if err != nil {
			return false
		}
		prev := units.Duration(-1)
		for _, r := range reqs {
			if r.Arrival < prev || r.Arrival >= 30*units.Second {
				return false
			}
			prev = r.Arrival
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
